//! Log-bucketed histogram with a numerically stable running mean.
//!
//! The bucket layout is fixed at compile time: [`SUBS`] logarithmically
//! spaced sub-buckets per power-of-two octave, spanning
//! [`MIN_TRACKABLE`] up to `MIN_TRACKABLE · 2^OCTAVES` (roughly a
//! nanosecond to over an hour when values are seconds), plus an
//! underflow and an overflow bucket. Every regular bucket therefore has
//! the same *relative* width (`2^(1/SUBS) ≈ 1.19`), so quantile
//! estimates carry at most ~19 % relative error regardless of scale —
//! the same histogram works for sub-millisecond decode latencies and
//! multi-second chaos runs.
//!
//! Unlike the ring-buffer `LatencyLog` this replaces, the histogram
//! never evicts: `count`, `mean`, `min`, and `max` are exact over the
//! full lifetime, and only the quantiles are approximate (bucketed).
//! The mean uses Welford's running update, `mean += (v - mean) / n`,
//! which does not accumulate the cancellation error of a naive
//! `sum / count` over long runs.

/// Smallest value with its own bucket; anything below lands in the
/// underflow bucket. With seconds as the unit this is one nanosecond.
pub const MIN_TRACKABLE: f64 = 1e-9;

/// Sub-buckets per power-of-two octave.
pub const SUBS: usize = 4;

/// Number of power-of-two octaves covered by regular buckets.
/// `MIN_TRACKABLE · 2^42 ≈ 4398` seconds — comfortably past any query.
pub const OCTAVES: usize = 42;

/// Total bucket count: underflow + regular + overflow.
pub const BUCKET_COUNT: usize = 2 + OCTAVES * SUBS;

/// A fixed-layout log-bucketed histogram.
///
/// Records nonnegative `f64` samples (negatives clamp to the underflow
/// bucket). `Clone`-able so snapshots are cheap and lock hold times
/// stay short.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    mean: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            mean: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a value falls into (also the export order).
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value < MIN_TRACKABLE {
            return 0; // underflow (NaN and negatives land here too)
        }
        let pos = ((value / MIN_TRACKABLE).log2() * SUBS as f64).floor();
        if pos >= (OCTAVES * SUBS) as f64 {
            BUCKET_COUNT - 1 // overflow
        } else {
            1 + pos as usize
        }
    }

    /// Inclusive lower bound of a regular bucket (0.0 for underflow).
    pub fn bucket_lower(index: usize) -> f64 {
        if index == 0 {
            0.0
        } else {
            MIN_TRACKABLE * ((index - 1) as f64 / SUBS as f64).exp2()
        }
    }

    /// Exclusive upper bound of a bucket (+inf for overflow).
    pub fn bucket_upper(index: usize) -> f64 {
        if index >= BUCKET_COUNT - 1 {
            f64::INFINITY
        } else {
            MIN_TRACKABLE * (index as f64 / SUBS as f64).exp2()
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let value = if value.is_nan() { 0.0 } else { value };
        self.count += 1;
        // Welford running mean: stable for long runs where a naive
        // sum would lose low-order bits against a large accumulator.
        self.mean += (value - self.mean) / self.count as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Lifetime sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Lifetime running mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Exact minimum sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile estimate, `q ∈ [0, 1]`.
    ///
    /// The rank is located exactly (counts are exact); the returned
    /// value is the geometric midpoint of the bucket holding that rank,
    /// clamped into `[min, max]` so estimates are monotone in `q`, a
    /// single-sample histogram reports the sample itself, and `q = 1`
    /// reports the exact maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Same nearest-rank convention as a sorted-array lookup at
        // round((n-1)·q).
        let target = ((self.count - 1) as f64 * q).round() as u64;
        // The extreme ranks are tracked exactly; report them exactly.
        if target == 0 {
            return self.min();
        }
        if target >= self.count - 1 {
            return self.max();
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > target {
                let lo = Self::bucket_lower(idx).max(MIN_TRACKABLE);
                let hi = Self::bucket_upper(idx);
                let mid = if hi.is_finite() { (lo * hi).sqrt() } else { lo };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending order — the Prometheus `le` series (without the final
    /// `+Inf`, which equals [`count`](Self::count)).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((Self::bucket_upper(idx), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log_spaced() {
        // Underflow.
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-1.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LogHistogram::bucket_index(0.5e-9), 0);
        // First regular bucket starts at MIN_TRACKABLE.
        assert_eq!(LogHistogram::bucket_index(1.01e-9), 1);
        // Each octave spans SUBS buckets: 2x the value moves SUBS on.
        let a = LogHistogram::bucket_index(3.0e-6);
        let b = LogHistogram::bucket_index(6.0e-6);
        assert_eq!(b - a, SUBS);
        // Bounds bracket their members.
        for v in [1.5e-9, 2.2e-7, 0.013, 1.0, 37.5] {
            let i = LogHistogram::bucket_index(v);
            assert!(LogHistogram::bucket_lower(i) <= v, "lower({i}) <= {v}");
            assert!(v < LogHistogram::bucket_upper(i), "{v} < upper({i})");
        }
        // Overflow.
        assert_eq!(LogHistogram::bucket_index(1e30), BUCKET_COUNT - 1);
    }

    #[test]
    fn single_sample_is_exact() {
        let mut h = LogHistogram::new();
        h.record(0.125);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 0.125);
        assert_eq!(h.p50(), 0.125);
        assert_eq!(h.p99(), 0.125);
        assert_eq!(h.max(), 0.125);
    }

    #[test]
    fn quantiles_within_bucket_relative_error() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 0.001 .. 1.000
        }
        let width = (1.0f64 / SUBS as f64).exp2(); // max relative error
        for (q, exact) in [(0.5, 0.5005), (0.9, 0.9005), (0.99, 0.9905)] {
            let est = h.quantile(q);
            assert!(
                est > exact / width && est < exact * width,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.max());
        assert_eq!(h.quantile(1.0), 1.0, "q=1 reports the exact max");
        assert!((h.mean() - 0.5005).abs() < 1e-9, "mean is exact");
    }

    #[test]
    fn running_mean_is_stable_for_long_runs() {
        let mut h = LogHistogram::new();
        for _ in 0..2_000_000 {
            h.record(1e-3);
        }
        assert!((h.mean() - 1e-3).abs() < 1e-12);
        assert_eq!(h.count(), 2_000_000);
    }

    #[test]
    fn cumulative_buckets_sum_to_count() {
        let mut h = LogHistogram::new();
        for v in [0.0, 1e-4, 2e-4, 5.0, 1e30] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, h.count());
        // Ascending le bounds and cumulative counts.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }
}
