//! Windowed SLO burn-rate evaluation over live telemetry.
//!
//! An [`SloMonitor`] is attached to one or more telemetry sources
//! (typically one per tenant) and re-evaluated at checkpoints — every
//! scrape of the observability plane, every adaptive-allocation
//! checkpoint. Each evaluation closes a *window*: the monitor diffs
//! the source's cumulative histograms and counters against the last
//! evaluation, computes the window's burn rates against the configured
//! error budgets, and emits a typed [`Alert`] for every objective
//! burning faster than budget.
//!
//! Three objectives, straight from the paper's serving concerns:
//!
//! * **Latency** — the fraction of queries completing over the
//!   deadline, read from the live latency histograms (p99-under-
//!   deadline as an error budget, not a point estimate).
//! * **Cost conformance** — the [`CostAccountant`](crate::CostAccountant)
//!   observed/predicted ratio must stay inside a band around 1000‰;
//!   drift outside the band is exactly the signal the adaptive
//!   allocator re-plans on.
//! * **Hygiene** — quarantine events and tracer drops in the window.
//!
//! Burn rate is reported in permille of budget per window: 1000 means
//! the window consumed its budget exactly; above 1000 alerts fire.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::registry::MetricValue;
use crate::Telemetry;

/// Histogram names the latency objective reads, in preference order —
/// all entries under these names (any labels) are aggregated.
const LATENCY_HISTOGRAMS: [&str; 2] = [
    "scec_query_latency_seconds",
    "scec_pipeline_fifo_latency_seconds",
];

/// Counter holding lifecycle events; entries whose labels mention
/// `quarantined` feed the hygiene objective.
const EVENTS_COUNTER: &str = "scec_supervisor_events_total";

/// Error budgets for one serving objective set.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Latency objective: queries should finish within this bound.
    pub deadline_seconds: f64,
    /// Budget: the permille of a window's queries allowed over the
    /// deadline (10 = 1 %, the classic "p99 under deadline").
    pub deadline_budget_permille: u64,
    /// Allowed deviation of the cost ledger's observed/predicted ratio
    /// from 1000‰ before the conformance alert fires.
    pub divergence_band_permille: u64,
    /// Quarantine events tolerated per window before the hygiene alert.
    pub quarantine_budget: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            deadline_seconds: 1.0,
            deadline_budget_permille: 10,
            divergence_band_permille: 300,
            quarantine_budget: 0,
        }
    }
}

/// Which objective an [`Alert`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// Over-deadline fraction exceeded its budget this window.
    LatencyBurn,
    /// Cost ledger drifted outside the conformance band.
    CostDivergence,
    /// Quarantine events exceeded the window budget.
    QuarantineRate,
    /// The tracer dropped events this window (observability loss).
    TracerDrops,
}

impl AlertKind {
    /// Stable label for exporters and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::LatencyBurn => "latency_burn",
            AlertKind::CostDivergence => "cost_divergence",
            AlertKind::QuarantineRate => "quarantine_rate",
            AlertKind::TracerDrops => "tracer_drops",
        }
    }
}

/// One fired objective violation.
#[derive(Clone, Debug)]
pub struct Alert {
    /// The violated objective.
    pub kind: AlertKind,
    /// The telemetry source (tenant) the window belongs to.
    pub source: String,
    /// Window index (1-based) at which the alert fired.
    pub window: u64,
    /// Burn in permille of budget (1000 = exactly on budget).
    pub burn_permille: u64,
    /// Human-readable context.
    pub detail: String,
}

impl Alert {
    /// `kind source#window burn detail` on one line.
    pub fn render(&self) -> String {
        format!(
            "alert {} source={} window={} burn={}permille {}",
            self.kind.as_str(),
            self.source,
            self.window,
            self.burn_permille,
            self.detail
        )
    }
}

/// Cumulative counts at the last window close, per source.
#[derive(Clone, Debug, Default)]
struct Cumulative {
    total: u64,
    under_deadline: u64,
    quarantined: u64,
    dropped: u64,
}

/// The last closed window's burn numbers, per source — what `/slo`
/// serves.
#[derive(Clone, Debug, Default)]
pub struct WindowReport {
    /// Windows closed for this source so far.
    pub window: u64,
    /// Queries completing in the window.
    pub total: u64,
    /// Of those, how many finished over the deadline.
    pub over_deadline: u64,
    /// Latency burn in permille of budget.
    pub latency_burn_permille: u64,
    /// Ledger observed/predicted ratio at window close (1000 = exact).
    pub divergence_permille: u64,
    /// Quarantine events in the window.
    pub quarantined: u64,
    /// Tracer drops in the window.
    pub dropped: u64,
    /// Alerts fired at this window close.
    pub alerts: Vec<Alert>,
}

/// Evaluates windowed burn rates for any number of telemetry sources.
///
/// Thread-safe; `observe` takes a short internal lock. Alerts
/// accumulate across windows (bounded by callers scraping
/// [`take_alerts`](Self::take_alerts) or rendering reports).
pub struct SloMonitor {
    config: SloConfig,
    state: Mutex<BTreeMap<String, (Cumulative, WindowReport)>>,
}

impl SloMonitor {
    /// A monitor with the given budgets.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured budgets.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Closes a window for `source`: diffs its cumulative telemetry
    /// against the previous close and returns the alerts that fired.
    pub fn observe(&self, source: &str, tel: &Telemetry) -> Vec<Alert> {
        let snap = tel.registry.snapshot();
        let mut total = 0u64;
        let mut under = 0u64;
        for (_, name, _, value) in &snap.entries {
            if !LATENCY_HISTOGRAMS.contains(&name.as_str()) {
                continue;
            }
            if let MetricValue::Histogram { count, buckets, .. } = value {
                total += count;
                under += buckets
                    .iter()
                    .take_while(|(le, _)| *le <= self.config.deadline_seconds)
                    .last()
                    .map(|(_, cum)| *cum)
                    .unwrap_or(0);
            }
        }
        let mut quarantined = 0u64;
        for (_, name, labels, value) in &snap.entries {
            if name == EVENTS_COUNTER && labels.contains("quarantined") {
                if let MetricValue::Counter(v) = value {
                    quarantined += v;
                }
            }
        }
        let now = Cumulative {
            total,
            under_deadline: under,
            quarantined,
            dropped: tel.tracer.dropped(),
        };
        let divergence = tel.costs.divergence_permille();

        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let (prev, report) = state.entry(source.to_string()).or_default();
        let window_total = now.total.saturating_sub(prev.total);
        let window_under = now.under_deadline.saturating_sub(prev.under_deadline);
        let window_over = window_total.saturating_sub(window_under);
        let window_quarantined = now.quarantined.saturating_sub(prev.quarantined);
        let window_dropped = now.dropped.saturating_sub(prev.dropped);
        let window = report.window + 1;

        let mut alerts = Vec::new();
        // Latency: burn = (over/total) / (budget/1000), in permille.
        let latency_burn = if window_total == 0 {
            0
        } else {
            window_over
                .saturating_mul(1_000_000)
                .checked_div(window_total.saturating_mul(self.config.deadline_budget_permille))
                .unwrap_or(u64::MAX)
        };
        if latency_burn > 1000 {
            alerts.push(Alert {
                kind: AlertKind::LatencyBurn,
                source: source.to_string(),
                window,
                burn_permille: latency_burn,
                detail: format!(
                    "{window_over}/{window_total} queries over {}s deadline (budget {}permille)",
                    self.config.deadline_seconds, self.config.deadline_budget_permille
                ),
            });
        }
        // Cost conformance: distance from 1000‰ against the band.
        let drift = divergence.abs_diff(1000);
        if drift > self.config.divergence_band_permille {
            alerts.push(Alert {
                kind: AlertKind::CostDivergence,
                source: source.to_string(),
                window,
                burn_permille: drift
                    .saturating_mul(1000)
                    .checked_div(self.config.divergence_band_permille)
                    .unwrap_or(u64::MAX),
                detail: format!(
                    "ledger at {divergence}permille of predicted (band ±{}permille)",
                    self.config.divergence_band_permille
                ),
            });
        }
        if window_quarantined > self.config.quarantine_budget {
            alerts.push(Alert {
                kind: AlertKind::QuarantineRate,
                source: source.to_string(),
                window,
                burn_permille: window_quarantined
                    .saturating_mul(1000)
                    .checked_div(self.config.quarantine_budget.max(1))
                    .unwrap_or(u64::MAX),
                detail: format!("{window_quarantined} quarantines in window"),
            });
        }
        if window_dropped > 0 {
            alerts.push(Alert {
                kind: AlertKind::TracerDrops,
                source: source.to_string(),
                window,
                burn_permille: 1000,
                detail: format!("{window_dropped} trace events dropped in window"),
            });
        }

        *prev = now;
        *report = WindowReport {
            window,
            total: window_total,
            over_deadline: window_over,
            latency_burn_permille: latency_burn,
            divergence_permille: divergence,
            quarantined: window_quarantined,
            dropped: window_dropped,
            alerts: alerts.clone(),
        };
        alerts
    }

    /// The last closed window per source.
    pub fn reports(&self) -> BTreeMap<String, WindowReport> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, (_, r))| (k.clone(), r.clone()))
            .collect()
    }

    /// Renders the per-source burn-rate document served at `/slo`.
    pub fn render_json(&self) -> String {
        let reports = self.reports();
        let mut out = String::from("{\n  \"schema\": \"scec-slo-v1\",\n  \"sources\": [");
        for (i, (source, r)) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"source\": \"{}\", \"window\": {}, \"total\": {}, \
                 \"over_deadline\": {}, \"latency_burn_permille\": {}, \
                 \"divergence_permille\": {}, \"quarantined\": {}, \
                 \"tracer_dropped\": {}, \"alerts\": [",
                crate::json_escape(source),
                r.window,
                r.total,
                r.over_deadline,
                r.latency_burn_permille,
                r.divergence_permille,
                r.quarantined,
                r.dropped
            );
            for (j, a) in r.alerts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"kind\": \"{}\", \"burn_permille\": {}, \"detail\": \"{}\"}}",
                    a.kind.as_str(),
                    a.burn_permille,
                    crate::json_escape(&a.detail)
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_latencies(tel: &Telemetry, fast: usize, slow: usize) {
        let h = tel
            .registry
            .histogram("scec_query_latency_seconds", &[("tenant", "0")]);
        for _ in 0..fast {
            h.record(0.01);
        }
        for _ in 0..slow {
            h.record(5.0);
        }
    }

    #[test]
    fn healthy_window_fires_no_alerts() {
        let tel = Telemetry::new();
        record_latencies(&tel, 100, 0);
        let mon = SloMonitor::new(SloConfig::default());
        let alerts = mon.observe("tenant-0", &tel);
        assert!(alerts.is_empty(), "{alerts:?}");
        let r = &mon.reports()["tenant-0"];
        assert_eq!(r.total, 100);
        assert_eq!(r.over_deadline, 0);
        assert_eq!(r.latency_burn_permille, 0);
    }

    #[test]
    fn deadline_burn_alerts_when_over_budget() {
        let tel = Telemetry::new();
        record_latencies(&tel, 90, 10); // 10% over a 1% budget = 10x burn
        let mon = SloMonitor::new(SloConfig::default());
        let alerts = mon.observe("tenant-0", &tel);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::LatencyBurn);
        assert_eq!(alerts[0].burn_permille, 10_000);
        assert!(alerts[0].render().contains("latency_burn"));
    }

    #[test]
    fn windows_diff_cumulative_counts() {
        let tel = Telemetry::new();
        record_latencies(&tel, 50, 10);
        let mon = SloMonitor::new(SloConfig::default());
        assert_eq!(mon.observe("t", &tel).len(), 1, "first window burns");
        // Second window: only fast queries arrive — burn clears.
        record_latencies(&tel, 100, 0);
        let alerts = mon.observe("t", &tel);
        assert!(alerts.is_empty(), "{alerts:?}");
        let r = &mon.reports()["t"];
        assert_eq!(r.window, 2);
        assert_eq!(r.total, 100);
        assert_eq!(r.over_deadline, 0);
    }

    #[test]
    fn divergence_and_quarantine_and_drops_alert() {
        let tel = Telemetry::new();
        // Ledger: predicted 10 rows/query, observed 20 → 2000‰.
        tel.costs.set_predicted(
            1,
            1.0,
            crate::CostVector {
                rows_served: 10,
                ..Default::default()
            },
        );
        tel.costs.record_received(1, 0, 20);
        tel.costs.record_query();
        tel.costs.record_attempt();
        // One quarantine event.
        tel.registry
            .counter(
                "scec_supervisor_events_total",
                &[("event", "supervisor.quarantined")],
            )
            .inc();
        // Tracer drops.
        let small = crate::Tracer::new(1);
        for _ in 0..3 {
            small.event(std::time::Duration::ZERO, "tick", None, None, "");
        }
        let tel = Telemetry {
            tracer: small,
            ..tel
        };
        let mon = SloMonitor::new(SloConfig::default());
        let alerts = mon.observe("t", &tel);
        let kinds: Vec<AlertKind> = alerts.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlertKind::CostDivergence), "{alerts:?}");
        assert!(kinds.contains(&AlertKind::QuarantineRate), "{alerts:?}");
        assert!(kinds.contains(&AlertKind::TracerDrops), "{alerts:?}");
        let json = mon.render_json();
        assert!(json.contains("\"schema\": \"scec-slo-v1\""));
        assert!(json.contains("cost_divergence"));
    }
}
