//! Predicted-vs-observed cost accounting, in the paper's currency.
//!
//! The MCSCEC objective (Sec. V) prices a deployment as
//! `Σ_j c_j · l_j`: each of device `j`'s `l_j` coded rows costs
//! `c_j = (l+1)c_s + l·c_m + (l−1)c_a + c_d` — storage, multiplies,
//! adds, and one transferred value per row per query. The accountant
//! keeps both sides of that ledger per device:
//!
//! * **predicted** — set once per topology (and again after a repair)
//!   from the active `CodeDesign`/allocation: the per-query
//!   [`CostVector`] a device *should* incur, plus its per-row unit
//!   cost `c_j`. Scaled by the completed-query count at report time.
//! * **observed** — accumulated from the runtime as queries actually
//!   flow: bytes broadcast to and received from the device, field
//!   multiplications/additions implied by the rows it served, and the
//!   coded rows it currently stores.
//!
//! Monetized totals use the paper's unit: `c_j ×` rows (predicted:
//! `l_j` per query; observed: rows actually served), so a straggler
//! that never answers shows up as observed < predicted and a retry
//! storm as observed > predicted.
//!
//! **Divergence as an adaptation signal.** The adaptive allocator uses
//! the observed/predicted rows ratio as its drift trigger, which makes
//! retry accounting load-bearing: every *attempt* (original broadcast
//! or retry) adds observed rows, but the predicted side is scaled by
//! *completed queries* — so a lossless fleet that merely retried would
//! read as divergent and could thrash the allocation. The ledger
//! therefore also counts [`attempts`](CostAccountant::record_attempt),
//! and [`divergence_permille`](CostAccountant::divergence_permille)
//! scales the predicted side by attempts (falling back to queries for
//! callers that never record attempts), so only genuinely unexpected
//! row traffic moves the signal.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::registry::fmt_f64;

/// Fixed per-message framing overhead, in bytes: the `scec-wire` header
/// (4 magic + 2 version + 2 tag) plus the runtime's 8-byte request id.
///
/// Pricing this **per window** rather than per query is what makes panel
/// batching visible in the ledger: a width-`k` panel ships `k` queries'
/// payload under a single header each way, so its predicted (and
/// observed) byte total is `k · payload + 2 · MESSAGE_OVERHEAD_BYTES`
/// instead of `k · (payload + 2 · MESSAGE_OVERHEAD_BYTES)`.
pub const MESSAGE_OVERHEAD_BYTES: u64 = 16;

/// One side of the per-device ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostVector {
    /// Coded rows resident on the device (a level, not a sum).
    pub stored_rows: u64,
    /// Coded rows served back to the user.
    pub rows_served: u64,
    /// Bytes sent user → device (queries).
    pub bytes_sent: u64,
    /// Bytes received device → user (partials).
    pub bytes_received: u64,
    /// Field multiplications performed for the user.
    pub field_mults: u64,
    /// Field additions performed for the user.
    pub field_adds: u64,
}

impl CostVector {
    /// Component-wise sum (stored_rows included — totals over devices
    /// add levels across distinct devices, which is meaningful).
    pub fn plus(&self, o: &CostVector) -> CostVector {
        CostVector {
            stored_rows: self.stored_rows + o.stored_rows,
            rows_served: self.rows_served + o.rows_served,
            bytes_sent: self.bytes_sent + o.bytes_sent,
            bytes_received: self.bytes_received + o.bytes_received,
            field_mults: self.field_mults + o.field_mults,
            field_adds: self.field_adds + o.field_adds,
        }
    }

    /// Per-query vector scaled to `queries` (stored_rows stays a level).
    pub fn scaled(&self, queries: u64) -> CostVector {
        CostVector {
            stored_rows: self.stored_rows,
            rows_served: self.rows_served * queries,
            bytes_sent: self.bytes_sent * queries,
            bytes_received: self.bytes_received * queries,
            field_mults: self.field_mults * queries,
            field_adds: self.field_adds * queries,
        }
    }

    fn render_json(&self) -> String {
        format!(
            "{{\"stored_rows\": {}, \"rows_served\": {}, \"bytes_sent\": {}, \
             \"bytes_received\": {}, \"field_mults\": {}, \"field_adds\": {}}}",
            self.stored_rows,
            self.rows_served,
            self.bytes_sent,
            self.bytes_received,
            self.field_mults,
            self.field_adds
        )
    }
}

#[derive(Clone, Debug, Default)]
struct DeviceEntry {
    unit_cost: f64,
    predicted_per_query: CostVector,
    /// Per-*window* prediction: costs paid once per broadcast round
    /// regardless of how many queries the round's panel carries (message
    /// framing, request-id bookkeeping). `stored_rows` must stay 0 here —
    /// the per-query vector owns the resident-row level.
    predicted_per_window: CostVector,
    observed: CostVector,
}

/// One device's report row: both ledger sides plus monetized totals.
#[derive(Clone, Debug)]
pub struct DeviceCostReport {
    /// Device id (physical, for supervised clusters).
    pub device: usize,
    /// Per-row unit cost `c_j` from the fleet.
    pub unit_cost: f64,
    /// Predicted usage over the completed-query count.
    pub predicted: CostVector,
    /// Observed usage, as accumulated.
    pub observed: CostVector,
    /// `c_j · l_j · queries`.
    pub predicted_cost: f64,
    /// `c_j ·` rows actually served.
    pub observed_cost: f64,
}

/// The full ledger: per-device rows plus totals.
#[derive(Clone, Debug, Default)]
pub struct CostReport {
    /// Completed queries the per-query predictions were scaled by.
    pub queries: u64,
    /// Completed broadcast windows the per-window predictions were
    /// scaled by (a plain unbatched query counts as a width-1 window).
    pub windows: u64,
    /// Query attempts (originals + retries). Zero when the caller never
    /// records attempts; the divergence signal then falls back to
    /// `queries`.
    pub attempts: u64,
    /// Per-device rows, ascending device id.
    pub devices: Vec<DeviceCostReport>,
    /// Sum of predicted vectors.
    pub total_predicted: CostVector,
    /// Sum of observed vectors.
    pub total_observed: CostVector,
    /// Sum of monetized predicted costs.
    pub predicted_cost: f64,
    /// Sum of monetized observed costs.
    pub observed_cost: f64,
}

impl CostReport {
    /// Renders the ledger as a JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\n    \"queries\": {},\n    \"windows\": {},\n    \"attempts\": {},",
            self.queries, self.windows, self.attempts
        );
        let _ = write!(
            out,
            "\n    \"predicted_cost\": {},\n    \"observed_cost\": {},",
            fmt_f64(self.predicted_cost),
            fmt_f64(self.observed_cost)
        );
        let _ = write!(
            out,
            "\n    \"total_predicted\": {},\n    \"total_observed\": {},",
            self.total_predicted.render_json(),
            self.total_observed.render_json()
        );
        out.push_str("\n    \"devices\": [");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"device\": {}, \"unit_cost\": {}, \"predicted_cost\": {}, \
                 \"observed_cost\": {}, \"predicted\": {}, \"observed\": {}}}",
                d.device,
                fmt_f64(d.unit_cost),
                fmt_f64(d.predicted_cost),
                fmt_f64(d.observed_cost),
                d.predicted.render_json(),
                d.observed.render_json()
            );
        }
        out.push_str("\n    ]\n  }");
        out
    }
}

/// Thread-safe predicted/observed ledger keyed by device id.
#[derive(Default)]
pub struct CostAccountant {
    inner: Mutex<CostInner>,
}

#[derive(Default)]
struct CostInner {
    devices: BTreeMap<usize, DeviceEntry>,
    queries: u64,
    windows: u64,
    attempts: u64,
}

impl CostAccountant {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut CostInner) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Installs (or replaces, after a repair) a device's prediction:
    /// its per-row unit cost and the per-query usage the active design
    /// assigns it. `per_query.stored_rows` is the resident-row level.
    pub fn set_predicted(&self, device: usize, unit_cost: f64, per_query: CostVector) {
        self.with(|inner| {
            let entry = inner.devices.entry(device).or_default();
            entry.unit_cost = unit_cost;
            entry.predicted_per_query = per_query;
        });
    }

    /// Adds user → device bytes.
    pub fn record_sent(&self, device: usize, bytes: u64) {
        self.with(|i| i.devices.entry(device).or_default().observed.bytes_sent += bytes);
    }

    /// Adds the same user → device byte count for every device of a
    /// fan-out, in a single lock — the broadcast-side hot path.
    pub fn record_broadcast(&self, devices: impl IntoIterator<Item = usize>, bytes: u64) {
        self.with(|i| {
            for device in devices {
                i.devices.entry(device).or_default().observed.bytes_sent += bytes;
            }
        });
    }

    /// Adds one served response in a single lock: device → user bytes,
    /// the rows they carried, and the field work they represent — the
    /// collect-side hot path.
    pub fn record_served(&self, device: usize, bytes: u64, rows: u64, mults: u64, adds: u64) {
        self.with(|i| {
            let obs = &mut i.devices.entry(device).or_default().observed;
            obs.bytes_received += bytes;
            obs.rows_served += rows;
            obs.field_mults += mults;
            obs.field_adds += adds;
        });
    }

    /// Adds device → user bytes and the rows they carried.
    pub fn record_received(&self, device: usize, bytes: u64, rows: u64) {
        self.with(|i| {
            let obs = &mut i.devices.entry(device).or_default().observed;
            obs.bytes_received += bytes;
            obs.rows_served += rows;
        });
    }

    /// Adds field work the device performed for the user.
    pub fn record_compute(&self, device: usize, mults: u64, adds: u64) {
        self.with(|i| {
            let obs = &mut i.devices.entry(device).or_default().observed;
            obs.field_mults += mults;
            obs.field_adds += adds;
        });
    }

    /// Sets the device's resident coded-row level.
    pub fn record_stored(&self, device: usize, rows: u64) {
        self.with(|i| i.devices.entry(device).or_default().observed.stored_rows = rows);
    }

    /// Installs (or replaces) a device's per-*window* prediction: costs
    /// paid once per broadcast round — message framing and request-id
    /// bookkeeping — no matter how many queries ride in the round's
    /// panel. Leave `stored_rows` at 0; the per-query vector owns that
    /// level.
    pub fn set_predicted_window(&self, device: usize, per_window: CostVector) {
        self.with(|inner| {
            inner
                .devices
                .entry(device)
                .or_default()
                .predicted_per_window = per_window;
        });
    }

    /// Counts one completed query (scales the predictions at report
    /// time).
    pub fn record_query(&self) {
        self.with(|i| i.queries += 1);
    }

    /// Counts `n` completed queries in one lock — the panel path records
    /// one per column when a window completes.
    pub fn record_queries(&self, n: u64) {
        self.with(|i| i.queries += n);
    }

    /// Counts one completed broadcast window (a plain query is a width-1
    /// window; a batched panel is one window carrying many queries).
    pub fn record_window(&self) {
        self.with(|i| i.windows += 1);
    }

    /// Counts one query *attempt* — an original broadcast or a retry.
    /// Attempts reconcile the divergence signal: retried queries add
    /// observed rows per attempt, so the predicted side must be priced
    /// per attempt too or honest retries read as drift.
    pub fn record_attempt(&self) {
        self.with(|i| i.attempts += 1);
    }

    /// Counts `n` attempts in one lock (panel broadcasts record one per
    /// column).
    pub fn record_attempts(&self, n: u64) {
        self.with(|i| i.attempts += n);
    }

    /// Completed-query count so far.
    pub fn queries(&self) -> u64 {
        self.with(|i| i.queries)
    }

    /// Completed-window count so far.
    pub fn windows(&self) -> u64 {
        self.with(|i| i.windows)
    }

    /// Attempt count so far (0 if the caller never records attempts).
    pub fn attempts(&self) -> u64 {
        self.with(|i| i.attempts)
    }

    /// Observed-vs-predicted served-row divergence, in thousandths
    /// (1000 = exactly as priced), with the predicted side scaled by
    /// **attempts** rather than completed queries so honest retries do
    /// not read as drift. Falls back to the completed-query count when
    /// no attempts were recorded; returns 1000 while nothing is
    /// predicted yet.
    pub fn divergence_permille(&self) -> u64 {
        self.with(|inner| {
            let scale = if inner.attempts > 0 {
                inner.attempts
            } else {
                inner.queries
            };
            let mut predicted = 0u64;
            let mut observed = 0u64;
            for entry in inner.devices.values() {
                predicted += entry.predicted_per_query.rows_served * scale;
                observed += entry.observed.rows_served;
            }
            if predicted == 0 {
                return 1_000;
            }
            (observed as u128 * 1_000 / predicted as u128) as u64
        })
    }

    /// Per-device divergence in thousandths, same scaling contract as
    /// [`divergence_permille`](Self::divergence_permille). Returns 1000
    /// for unknown devices or before any prediction is installed.
    pub fn device_divergence_permille(&self, device: usize) -> u64 {
        self.with(|inner| {
            let scale = if inner.attempts > 0 {
                inner.attempts
            } else {
                inner.queries
            };
            let Some(entry) = inner.devices.get(&device) else {
                return 1_000;
            };
            let predicted = entry.predicted_per_query.rows_served * scale;
            if predicted == 0 {
                return 1_000;
            }
            (entry.observed.rows_served as u128 * 1_000 / predicted as u128) as u64
        })
    }

    /// Builds the predicted-vs-observed report.
    pub fn report(&self) -> CostReport {
        self.with(|inner| {
            let mut report = CostReport {
                queries: inner.queries,
                windows: inner.windows,
                attempts: inner.attempts,
                ..CostReport::default()
            };
            for (&device, entry) in &inner.devices {
                let predicted = entry
                    .predicted_per_query
                    .scaled(inner.queries)
                    .plus(&entry.predicted_per_window.scaled(inner.windows));
                let predicted_cost = entry.unit_cost * predicted.rows_served as f64;
                let observed_cost = entry.unit_cost * entry.observed.rows_served as f64;
                report.total_predicted = report.total_predicted.plus(&predicted);
                report.total_observed = report.total_observed.plus(&entry.observed);
                report.predicted_cost += predicted_cost;
                report.observed_cost += observed_cost;
                report.devices.push(DeviceCostReport {
                    device,
                    unit_cost: entry.unit_cost,
                    predicted,
                    observed: entry.observed,
                    predicted_cost,
                    observed_cost,
                });
            }
            report
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_scale_by_queries_and_money_uses_unit_cost() {
        let acc = CostAccountant::new();
        acc.set_predicted(
            1,
            2.5,
            CostVector {
                stored_rows: 3,
                rows_served: 3,
                bytes_sent: 32,
                bytes_received: 24,
                field_mults: 12,
                field_adds: 9,
            },
        );
        acc.record_query();
        acc.record_query();
        let report = acc.report();
        assert_eq!(report.queries, 2);
        let d = &report.devices[0];
        assert_eq!(d.predicted.stored_rows, 3, "levels do not scale");
        assert_eq!(d.predicted.rows_served, 6);
        assert_eq!(d.predicted.bytes_sent, 64);
        assert_eq!(d.predicted_cost, 2.5 * 6.0);
        assert_eq!(d.observed_cost, 0.0, "nothing observed yet");
    }

    #[test]
    fn observed_side_accumulates() {
        let acc = CostAccountant::new();
        acc.set_predicted(2, 1.0, CostVector::default());
        acc.record_sent(2, 100);
        acc.record_received(2, 40, 5);
        acc.record_compute(2, 20, 15);
        acc.record_stored(2, 4);
        acc.record_stored(2, 6); // level replaces, not adds
        let report = acc.report();
        let d = &report.devices[0];
        assert_eq!(d.observed.bytes_sent, 100);
        assert_eq!(d.observed.bytes_received, 40);
        assert_eq!(d.observed.rows_served, 5);
        assert_eq!(d.observed.field_mults, 20);
        assert_eq!(d.observed.field_adds, 15);
        assert_eq!(d.observed.stored_rows, 6);
        assert_eq!(report.observed_cost, 5.0);
    }

    #[test]
    fn per_window_predictions_amortize_over_panels() {
        // Hand-computed: payload of 24 bytes per query each way, 16-byte
        // framing per message. 8 queries in 2 windows (panels of width 4)
        // must predict 8·24 + 2·16 bytes per direction — not 8·(24+16).
        let acc = CostAccountant::new();
        acc.set_predicted(
            1,
            1.0,
            CostVector {
                bytes_sent: 24,
                bytes_received: 24,
                rows_served: 1,
                ..CostVector::default()
            },
        );
        acc.set_predicted_window(
            1,
            CostVector {
                bytes_sent: MESSAGE_OVERHEAD_BYTES,
                bytes_received: MESSAGE_OVERHEAD_BYTES,
                ..CostVector::default()
            },
        );
        acc.record_queries(4);
        acc.record_window();
        acc.record_queries(4);
        acc.record_window();
        let report = acc.report();
        assert_eq!(report.queries, 8);
        assert_eq!(report.windows, 2);
        let d = &report.devices[0];
        assert_eq!(d.predicted.bytes_sent, 8 * 24 + 2 * 16);
        assert_eq!(d.predicted.bytes_received, 8 * 24 + 2 * 16);
        assert_eq!(d.predicted.rows_served, 8, "rows stay per-query");
        assert!(report.render_json().contains("\"windows\": 2,"));
    }

    #[test]
    fn divergence_reconciles_retried_attempts() {
        // Pinned hand-computed regression for the double-count bug:
        // 2 devices each predicted to serve 1 row per query; 2 queries
        // complete but one needed a retry, so 3 attempts flowed and
        // every attempt served both devices' rows → observed = 6 rows.
        //
        // Buggy signal (predicted scaled by completed queries):
        //   6 · 1000 / (2 rows/query · 2 queries) = 1500 — a phantom
        //   50% divergence from honest retries alone.
        // Reconciled (predicted scaled by attempts):
        //   6 · 1000 / (2 · 3) = 1000 — exactly as priced.
        let acc = CostAccountant::new();
        for dev in 1..=2 {
            acc.set_predicted(
                dev,
                1.0,
                CostVector {
                    rows_served: 1,
                    ..CostVector::default()
                },
            );
        }
        acc.record_attempt(); // query 1, first attempt
        acc.record_received(1, 8, 1);
        acc.record_received(2, 8, 1);
        acc.record_attempt(); // query 2, first attempt (times out)
        acc.record_received(1, 8, 1);
        acc.record_received(2, 8, 1);
        acc.record_attempt(); // query 2, retry
        acc.record_received(1, 8, 1);
        acc.record_received(2, 8, 1);
        acc.record_queries(2);
        assert_eq!(acc.attempts(), 3);
        let buggy = {
            let report = acc.report(); // report still scales by queries
            report.total_observed.rows_served * 1_000 / report.total_predicted.rows_served
        };
        assert_eq!(buggy, 1_500, "queries-scaled signal double-counts retries");
        assert_eq!(acc.divergence_permille(), 1_000);
        assert_eq!(acc.device_divergence_permille(1), 1_000);
        assert_eq!(acc.device_divergence_permille(99), 1_000, "unknown device");
    }

    #[test]
    fn divergence_falls_back_to_queries_without_attempts() {
        let acc = CostAccountant::new();
        acc.set_predicted(
            1,
            1.0,
            CostVector {
                rows_served: 2,
                ..CostVector::default()
            },
        );
        assert_eq!(acc.divergence_permille(), 1_000, "nothing predicted yet");
        acc.record_query();
        acc.record_received(1, 8, 3);
        // No attempts recorded: scale by the 1 completed query.
        assert_eq!(acc.divergence_permille(), 1_500);
        assert_eq!(acc.device_divergence_permille(1), 1_500);
        assert!(acc.report().render_json().contains("\"attempts\": 0,"));
    }

    #[test]
    fn report_totals_sum_devices_and_render_as_json() {
        let acc = CostAccountant::new();
        for dev in 1..=3 {
            acc.set_predicted(
                dev,
                1.0,
                CostVector {
                    rows_served: 2,
                    ..CostVector::default()
                },
            );
            acc.record_received(dev, 16, 2);
        }
        acc.record_query();
        let report = acc.report();
        assert_eq!(report.devices.len(), 3);
        assert_eq!(report.total_predicted.rows_served, 6);
        assert_eq!(report.total_observed.rows_served, 6);
        assert_eq!(report.predicted_cost, report.observed_cost);
        let json = report.render_json();
        assert!(json.contains("\"devices\": ["));
        assert!(json.contains("\"predicted\": {\"stored_rows\": 0"));
    }
}
