//! Lock-cheap metrics registry: counters, gauges, and log-bucketed
//! histograms, exported as Prometheus text or JSON.
//!
//! Registration takes a short registry lock (a `BTreeMap` lookup);
//! the returned handles are `Arc`-shared atomics (counters/gauges) or
//! a per-histogram mutex, so the hot paths — `inc`, `add`, `set`,
//! `record` — never touch the registry lock and never contend with
//! each other across metrics. Instrumented components are expected to
//! resolve their handles once at attach time, not per event.
//!
//! Keys are `name{label="value",…}` with labels sorted, stored in a
//! `BTreeMap`, so snapshots and both exporters are byte-deterministic
//! for a given set of recorded values.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::LogHistogram;

/// Monotone counter handle (atomic, lock-free).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed gauge handle (atomic, lock-free).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram handle; `record` takes only this histogram's own lock.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        self.lock().record(v);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> LogHistogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogHistogram> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Mutex<LogHistogram>>),
}

/// The registry: name → metric, behind one short-lived lock.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

/// One exported metric value.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Signed level.
    Gauge(i64),
    /// Distribution summary: count, mean, min, max, p50, p99, and the
    /// cumulative `(le, count)` bucket series.
    Histogram {
        /// Lifetime sample count.
        count: u64,
        /// Stable running mean.
        mean: f64,
        /// Exact minimum.
        min: f64,
        /// Exact maximum.
        max: f64,
        /// Median estimate.
        p50: f64,
        /// 99th-percentile estimate.
        p99: f64,
        /// Non-empty cumulative buckets, ascending `le`.
        buckets: Vec<(f64, u64)>,
    },
}

/// A point-in-time dump of every registered metric, sorted by key.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(full key, bare name, rendered labels, value)` per metric.
    pub entries: Vec<(String, String, String, MetricValue)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> (String, String) {
        let name = sanitize_name(name, true);
        if labels.is_empty() {
            return (name, String::new());
        }
        let mut sorted: Vec<_> = labels.to_vec();
        sorted.sort_unstable();
        let mut rendered = String::new();
        for (i, (k, v)) in sorted.iter().enumerate() {
            if i > 0 {
                rendered.push(',');
            }
            let _ = write!(
                rendered,
                "{}=\"{}\"",
                sanitize_name(k, false),
                escape_value(v)
            );
        }
        (format!("{name}{{{rendered}}}"), rendered)
    }

    /// Gets or creates a counter. A name already registered as another
    /// kind yields a fresh detached handle (recorded values are lost) —
    /// callers own their namespace, so this is a programming error kept
    /// non-fatal.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let (key, _) = Self::key(name, labels);
        let mut slots = self.lock();
        if let Slot::Counter(c) = slots
            .entry(key)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Counter(Arc::clone(c))
        } else {
            Counter(Arc::new(AtomicU64::new(0)))
        }
    }

    /// Gets or creates a gauge (same collision policy as `counter`).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let (key, _) = Self::key(name, labels);
        let mut slots = self.lock();
        if let Slot::Gauge(g) = slots
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))))
        {
            Gauge(Arc::clone(g))
        } else {
            Gauge(Arc::new(AtomicI64::new(0)))
        }
    }

    /// Gets or creates a histogram (same collision policy as `counter`).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let (key, _) = Self::key(name, labels);
        let mut slots = self.lock();
        if let Slot::Histogram(h) = slots
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Arc::new(Mutex::new(LogHistogram::new()))))
        {
            Histogram(Arc::clone(h))
        } else {
            Histogram(Arc::new(Mutex::new(LogHistogram::new())))
        }
    }

    /// Dumps every metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.lock();
        let mut entries = Vec::with_capacity(slots.len());
        for (key, slot) in slots.iter() {
            let (name, labels) = match key.split_once('{') {
                Some((n, rest)) => (n.to_string(), rest.trim_end_matches('}').to_string()),
                None => (key.clone(), String::new()),
            };
            let value = match slot {
                Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Slot::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                Slot::Histogram(h) => {
                    let h = h.lock().unwrap_or_else(|p| p.into_inner());
                    MetricValue::Histogram {
                        count: h.count(),
                        mean: h.mean(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.p50(),
                        p99: h.p99(),
                        buckets: h.cumulative_buckets(),
                    }
                }
            };
            entries.push((key.clone(), name, labels, value));
        }
        MetricsSnapshot { entries }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Coerces a metric or label name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`, colons allowed in metric names only):
/// invalid characters become `_`, and a leading digit gets a `_`
/// prefix. Applied at registration so every key in the registry — and
/// therefore every exporter line — is well-formed by construction.
fn sanitize_name(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value for the Prometheus text format (`\`, `"`, and
/// newline). The escaped form is what the key stores, so both
/// exporters emit it verbatim.
fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for exporters: finite values via `Display`
/// (round-trip, no exponent — valid in both JSON and Prometheus text),
/// non-finite values as 0.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (_, name, labels, value) in &self.entries {
            let typed = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} {typed}");
                last_name = name.clone();
            }
            let braced = |extra: &str| -> String {
                match (labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{labels}}}"),
                    (false, false) => format!("{{{labels},{extra}}}"),
                }
            };
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", braced(""));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", braced(""));
                }
                MetricValue::Histogram {
                    count,
                    mean,
                    buckets,
                    ..
                } => {
                    for (le, cum) in buckets {
                        // The overflow bucket's bound is +Inf; skip it
                        // here so the canonical +Inf line below is the
                        // only one (its cumulative count is `count`).
                        if !le.is_finite() {
                            continue;
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            braced(&format!("le=\"{}\"", fmt_f64(*le)))
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{} {count}", braced("le=\"+Inf\""));
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        braced(""),
                        fmt_f64(mean * *count as f64)
                    );
                    let _ = writeln!(out, "{name}_count{} {count}", braced(""));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON array of metric objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (_, name, labels, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": \"{}\", ",
                crate::json_escape(name),
                crate::json_escape(labels)
            );
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {v}}}");
                }
                MetricValue::Histogram {
                    count,
                    mean,
                    min,
                    max,
                    p50,
                    p99,
                    ..
                } => {
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {count}, \"mean\": {}, \
                         \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}}}",
                        fmt_f64(*mean),
                        fmt_f64(*min),
                        fmt_f64(*max),
                        fmt_f64(*p50),
                        fmt_f64(*p99)
                    );
                }
            }
        }
        out.push_str("\n  ]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_lock_free_on_the_hot_path() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("scec_queries_total", &[]);
        let c2 = reg.counter("scec_queries_total", &[]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same underlying atomic");

        let g = reg.gauge("scec_in_flight", &[]);
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);

        let h = reg.histogram("scec_latency_seconds", &[("cluster", "local")]);
        h.record(0.25);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn labels_are_sorted_into_a_stable_key() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("m", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split the metric");
        let snap = reg.snapshot();
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.entries[0].0, "m{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn prometheus_render_has_type_lines_and_histogram_series() {
        let reg = MetricsRegistry::new();
        reg.counter("scec_queries_total", &[]).add(7);
        reg.gauge("scec_in_flight", &[]).set(2);
        let h = reg.histogram("scec_latency_seconds", &[]);
        h.record(0.001);
        h.record(0.002);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE scec_queries_total counter"));
        assert!(text.contains("scec_queries_total 7"));
        assert!(text.contains("# TYPE scec_in_flight gauge"));
        assert!(text.contains("scec_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("scec_latency_seconds_count 2"));
    }

    #[test]
    fn names_and_labels_are_sanitized_into_the_prometheus_grammar() {
        let reg = MetricsRegistry::new();
        // Dots, dashes, spaces, and a leading digit are all coerced.
        reg.counter("scec.query-rate total", &[("bad key", "v")])
            .inc();
        reg.counter("9lives", &[]).inc();
        // Label values keep their content but escape text-format specials.
        reg.counter("m", &[("k", "a\"b\\c\nd")]).inc();
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("scec_query_rate_total{bad_key=\"v\"} 1"));
        assert!(text.contains("_9lives 1"));
        assert!(text.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1"));
        // Sanitized spellings resolve to the same handle.
        assert_eq!(
            reg.counter("scec_query_rate_total", &[("bad_key", "v")])
                .get(),
            1
        );
    }

    #[test]
    fn empty_histogram_exports_zeroes_and_an_inf_bucket() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("scec_idle_seconds", &[]);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE scec_idle_seconds histogram"));
        assert!(text.contains("scec_idle_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("scec_idle_seconds_sum 0"));
        assert!(text.contains("scec_idle_seconds_count 0"));
        let json = reg.snapshot().render_json();
        // The empty-histogram quantiles are finite zeroes, not NaN.
        assert!(json.contains("\"count\": 0, \"mean\": 0"));
        assert!(json.contains("\"p50\": 0, \"p99\": 0"));
    }

    #[test]
    fn inf_bucket_line_caps_every_histogram_series() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("scec_latency_seconds", &[("t", "0")]);
        h.record(1e30); // overflow bucket: upper bound is +Inf
        h.record(0.001);
        let text = reg.snapshot().render_prometheus();
        // Exactly one +Inf line (the overflow bucket would also render
        // +Inf, so the exporter must not duplicate it)…
        let inf_lines = text.lines().filter(|l| l.contains("le=\"+Inf\"")).count();
        assert_eq!(inf_lines, 1, "{text}");
        // …and it carries the full count.
        assert!(text.contains("scec_latency_seconds_bucket{t=\"0\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn json_render_is_an_array_of_objects() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("k", "v")]).inc();
        reg.histogram("b_seconds", &[]).record(1.0);
        let json = reg.snapshot().render_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"type\": \"counter\""));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"labels\": \"k=\\\"v\\\"\""));
    }
}
