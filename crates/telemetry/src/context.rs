//! Cross-process trace context: the identifiers that stitch Router-side
//! and device-side spans into one causal tree per query.
//!
//! A [`TraceContext`] is derived **deterministically** from
//! `(tenant, query_id, generation)` — no wall clock, no global counter
//! — so two replays of the same seeded workload mint identical ids and
//! the rendered trace is byte-identical. The derivation is a
//! splitmix64-style finalizer over the three coordinates, which keeps
//! ids well-spread (distinct tenants or repair generations never
//! collide in practice) while staying a pure function of the protocol
//! state.
//!
//! On the wire the context travels as a fixed 17-byte block between the
//! frame tag and the payload of a version-2 frame:
//! `trace_id: u64 LE | parent_span_id: u64 LE | flags: u8` (bit 0 =
//! sampled). Version-1 frames carry no context and keep parsing —
//! see `scec_wire` for the framing itself.

/// Encoded size of a wire-propagated context block:
/// `trace_id (8) + parent_span_id (8) + flags (1)`.
pub const TRACE_CONTEXT_WIRE_BYTES: u64 = 17;

/// Flag bit 0: the trace is sampled (spans should be recorded).
pub const FLAG_SAMPLED: u8 = 0b0000_0001;

/// The identifiers a query carries across process boundaries.
///
/// `parent_span_id` names the span on the *sending* side that causally
/// precedes whatever the receiver records — for a `QUERY` frame it is
/// the Router's dispatch span, so the device's compute span parents
/// onto it and Perfetto renders one tree per query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole query tree; constant across retries and
    /// repair generations of one logical query.
    pub trace_id: u64,
    /// Span id of the sender-side span this hop is a child of.
    pub parent_span_id: u64,
    /// Whether spans for this trace should be recorded.
    pub sampled: bool,
}

impl TraceContext {
    /// Derives the root context for a query: the trace id is a pure
    /// function of `(tenant, query_id, generation)`, and the parent is
    /// the query's root span (see [`span_id`] with [`kind::ROOT`]).
    ///
    /// `generation` is the topology generation the query *started*
    /// under; retries within a generation share the trace.
    pub fn derive(tenant: u64, query_id: u64, generation: u64) -> Self {
        let trace_id = derive_trace_id(tenant, query_id, generation);
        TraceContext {
            trace_id,
            parent_span_id: span_id(trace_id, kind::ROOT, 0),
            sampled: true,
        }
    }

    /// The same context re-parented onto `parent` — what the Router
    /// stamps on an outgoing frame after recording its dispatch span.
    #[must_use]
    pub fn child_of(self, parent: u64) -> Self {
        TraceContext {
            parent_span_id: parent,
            ..self
        }
    }

    /// Packs the context into its 17-byte wire block.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.parent_span_id.to_le_bytes());
        out.push(if self.sampled { FLAG_SAMPLED } else { 0 });
    }

    /// Unpacks a 17-byte wire block; `None` when `bytes` is short.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < TRACE_CONTEXT_WIRE_BYTES as usize {
            return None;
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[0..8]);
        let trace_id = u64::from_le_bytes(id);
        id.copy_from_slice(&bytes[8..16]);
        let parent_span_id = u64::from_le_bytes(id);
        Some(TraceContext {
            trace_id,
            parent_span_id,
            sampled: bytes[16] & FLAG_SAMPLED != 0,
        })
    }
}

/// Span-kind discriminants mixed into [`span_id`] so the different
/// spans of one trace never collide.
pub mod kind {
    /// The query's root (the Router-side logical query span).
    pub const ROOT: u64 = 1;
    /// A dispatch (broadcast) span; qualifier = attempt number.
    pub const DISPATCH: u64 = 2;
    /// A device compute span; qualifier = device id.
    pub const DEVICE_COMPUTE: u64 = 3;
    /// A collect span.
    pub const COLLECT: u64 = 4;
    /// A decode span.
    pub const DECODE: u64 = 5;
    /// A retry point event; qualifier = attempt number.
    pub const RETRY: u64 = 6;
    /// A hot-repair point event; qualifier = new generation.
    pub const REPAIR: u64 = 7;
    /// An adaptive re-plan point event; qualifier = new generation.
    pub const REPLAN: u64 = 8;
}

/// splitmix64 finalizer: the standard 64-bit avalanche.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic, never-zero trace id for a query coordinate.
pub fn derive_trace_id(tenant: u64, query_id: u64, generation: u64) -> u64 {
    let id = mix(mix(mix(tenant ^ 0x5343_4543_2019_0001) ^ query_id) ^ generation);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Deterministic, never-zero span id within a trace. `kind` is one of
/// the [`kind`] discriminants; `qualifier` distinguishes siblings of
/// the same kind (device id, attempt number, generation).
pub fn span_id(trace_id: u64, kind: u64, qualifier: u64) -> u64 {
    let id = mix(mix(trace_id ^ kind.wrapping_mul(0x0100_0000_01b3)) ^ qualifier);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The ids attached to a recorded span: its trace, its own id, and its
/// parent (`0` = root of the tree).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanIds {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's own id.
    pub span: u64,
    /// Parent span id; `0` marks a tree root.
    pub parent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_nonzero() {
        let a = TraceContext::derive(3, 41, 0);
        let b = TraceContext::derive(3, 41, 0);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.parent_span_id, 0);
        assert!(a.sampled);
    }

    #[test]
    fn distinct_coordinates_get_distinct_ids() {
        let base = TraceContext::derive(1, 1, 0);
        for (t, q, g) in [(2, 1, 0), (1, 2, 0), (1, 1, 1)] {
            assert_ne!(TraceContext::derive(t, q, g).trace_id, base.trace_id);
        }
        let tid = base.trace_id;
        let dispatch = span_id(tid, kind::DISPATCH, 0);
        assert_ne!(dispatch, span_id(tid, kind::DISPATCH, 1));
        assert_ne!(dispatch, span_id(tid, kind::DEVICE_COMPUTE, 0));
        assert_ne!(dispatch, span_id(tid, kind::ROOT, 0));
    }

    #[test]
    fn wire_block_round_trips() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_cafe_f00d,
            parent_span_id: 42,
            sampled: true,
        };
        let mut buf = Vec::new();
        ctx.encode_into(&mut buf);
        assert_eq!(buf.len(), TRACE_CONTEXT_WIRE_BYTES as usize);
        assert_eq!(TraceContext::decode(&buf), Some(ctx));
        let unsampled = TraceContext {
            sampled: false,
            ..ctx
        };
        buf.clear();
        unsampled.encode_into(&mut buf);
        assert_eq!(TraceContext::decode(&buf), Some(unsampled));
        assert_eq!(TraceContext::decode(&buf[..16]), None);
    }

    #[test]
    fn child_of_reparents_only() {
        let ctx = TraceContext::derive(7, 9, 2);
        let child = ctx.child_of(1234);
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_eq!(child.parent_span_id, 1234);
        assert_eq!(child.sampled, ctx.sampled);
    }
}
