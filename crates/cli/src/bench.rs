//! `scec bench`: the benchmark-trajectory harness.
//!
//! Runs a fixed suite of kernel and end-to-end cases and writes the
//! medians to `BENCH_<n>.json`, where `n` increments across runs so a
//! repo accumulates a *trajectory* of snapshots rather than overwriting
//! the previous numbers. The JSON is hand-rolled (no serde_json
//! dependency) against a stable schema (`scec-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "scec-bench-v1",
//!   "index": 2,
//!   "machine": { "cpu": "...", "cores": 8, ... },
//!   "cases": [ { "name": "fp61_matmul_lazy", "size": 256,
//!                "ops": 16777216, "median_ns": 1234, "ns_per_op": 0.07 } ]
//! }
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};

use std::sync::Arc;

use scec_allocation::EdgeFleet;
use scec_coding::{decode, CodeDesign, DecodePlan, Encoder};
use scec_core::{AllocationStrategy, ScecSystem};
use scec_linalg::{gauss, kernels, ops, simd, Fp61, Matrix, Vector};
use scec_runtime::{LocalCluster, PanelPipeline, QueryPipeline, Telemetry};

use crate::error::{Error, Result};

/// Options for [`run`], mirroring the `scec bench` flags.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Directory that receives `BENCH_<n>.json`.
    pub out_dir: PathBuf,
    /// Timed repetitions per case (the median is reported).
    pub iters: usize,
    /// Explicit snapshot index; `None` means one past the largest
    /// existing `BENCH_<n>.json` in `out_dir`.
    pub index: Option<usize>,
    /// Shrink every case (~secs → ~ms); used by tests and smoke runs.
    pub quick: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            out_dir: PathBuf::from("."),
            iters: 7,
            index: None,
            quick: false,
        }
    }
}

struct CaseResult {
    name: &'static str,
    size: usize,
    ops: usize,
    median_ns: u128,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    // One untimed warmup so allocation and cache effects settle.
    f();
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_suite(iters: usize, quick: bool) -> (Vec<CaseResult>, String) {
    let mut rng = StdRng::seed_from_u64(0x5CEC);
    let n = if quick { 48 } else { 256 };
    let nv = if quick { 128 } else { 1024 };
    let ng = if quick { 24 } else { 128 };
    let (m, r, l) = if quick { (32, 4, 64) } else { (256, 16, 1024) };

    let a = Matrix::<Fp61>::random(n, n, &mut rng);
    let b = Matrix::<Fp61>::random(n, n, &mut rng);
    let af = Matrix::<f64>::random(n, n, &mut rng);
    let bf = Matrix::<f64>::random(n, n, &mut rng);
    let big = Matrix::<Fp61>::random(nv, nv, &mut rng);
    let x = Vector::<Fp61>::random(nv, &mut rng);
    let sq = Matrix::<Fp61>::random(ng, ng, &mut rng);
    let data = Matrix::<Fp61>::random(m, l, &mut rng);
    let randomness = Matrix::<Fp61>::random(r, l, &mut rng);
    let query = Vector::<Fp61>::random(l, &mut rng);
    let design = CodeDesign::new(m, r).expect("valid design");
    let encoder = Encoder::new(design.clone());

    let mut results = Vec::new();
    let mut case = |name, size, ops, f: &mut dyn FnMut()| {
        results.push(CaseResult {
            name,
            size,
            ops,
            median_ns: median_ns(iters, f),
        });
    };

    case("fp61_matmul_naive", n, n * n * n, &mut || {
        std::hint::black_box(kernels::matmul_naive(&a, &b).unwrap());
    });
    // `fp61_matmul_lazy` stays pinned to the scalar kernel so the
    // trajectory remains comparable with pre-SIMD snapshots;
    // `fp61_matmul_simd` measures the runtime-dispatched vector path
    // (identical numbers on machines without AVX2).
    simd::force_scalar(true);
    case("fp61_matmul_lazy", n, n * n * n, &mut || {
        std::hint::black_box(a.matmul_serial(&b).unwrap());
    });
    simd::force_scalar(false);
    case("fp61_matmul_simd", n, n * n * n, &mut || {
        std::hint::black_box(a.matmul_serial(&b).unwrap());
    });
    case("fp61_matmul_parallel", n, n * n * n, &mut || {
        std::hint::black_box(a.matmul(&b).unwrap());
    });
    case("f64_matmul", n, n * n * n, &mut || {
        std::hint::black_box(af.matmul(&bf).unwrap());
    });
    case("fp61_matvec", nv, nv * nv, &mut || {
        std::hint::black_box(big.matvec(&x).unwrap());
    });
    case("fp61_transpose", nv, nv * nv, &mut || {
        std::hint::black_box(big.transpose());
    });
    case("fp61_gauss_invert", ng, ng * ng * ng, &mut || {
        std::hint::black_box(gauss::invert(&sq).unwrap());
    });
    // End-to-end: encode the data matrix, run every device's matvec, and
    // decode — the full secure-query round trip of the paper's pipeline.
    let e2e_ops = (m + r) * l * 2 + m;
    case("scec_encode_query_decode", m, e2e_ops, &mut || {
        let store = encoder
            .encode_with_randomness(&data, &randomness)
            .expect("encode");
        let partials: Vec<Vector<Fp61>> = store
            .shares()
            .iter()
            .map(|s| s.compute(&query).expect("device compute"))
            .collect();
        let y = decode::decode_fast(&design, &decode::stack_partials(&partials)).expect("decode");
        std::hint::black_box(y);
    });

    // Query throughput over a live threaded cluster: the same query
    // stream served sequentially vs pipelined at window depths 4 and 16.
    // Per-query work is kept small so the per-round-trip synchronization
    // (channel wakeups, decode stalls) is what is being measured — the
    // overhead pipelining exists to hide. `ops` is the query count, so
    // ns_per_op reads as ns per query and the speedup is the ratio of
    // the sequential to the pipelined ns_per_op.
    let (tm, tl, tq) = if quick { (16, 32, 8) } else { (48, 96, 32) };
    let telemetry = {
        let ta = Matrix::<Fp61>::random(tm, tl, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.3, 1.6, 2.0, 2.5]).expect("valid costs");
        let sys = ScecSystem::build(ta, fleet, AllocationStrategy::Mcscec, &mut rng)
            .expect("system build");
        // The timed cases run with the `telemetry` feature compiled in
        // but no handle attached — the default build's passive overhead
        // (a branch per call site, atomic flop tallies in the kernels)
        // is what the trajectory must show staying flat. Attachment is
        // the gate for the real recording cost, and it is priced by the
        // untimed instrumented drain below, not by the timed medians.
        let tel = Arc::new(Telemetry::new());
        let cluster = LocalCluster::launch(&sys, &mut rng).expect("cluster launch");
        let queries: Vec<Vector<Fp61>> = (0..tq).map(|_| Vector::random(tl, &mut rng)).collect();
        case("cluster_query_sequential", tm, tq, &mut || {
            for q in &queries {
                std::hint::black_box(cluster.query(q).expect("query"));
            }
        });
        case("cluster_query_pipelined_w4", tm, tq, &mut || {
            std::hint::black_box(QueryPipeline::run(&cluster, 4, &queries).expect("pipeline"));
        });
        case("cluster_query_pipelined_w16", tm, tq, &mut || {
            std::hint::black_box(QueryPipeline::run(&cluster, 16, &queries).expect("pipeline"));
        });
        // One untimed instrumented drain so the snapshot carries the
        // full observability surface: the attach installs each device's
        // predicted cost from the plan, and the pipelined pass records
        // spans, the observed cost ledger, and the window-occupancy and
        // FIFO-latency distributions.
        let cluster = cluster.with_telemetry(Arc::clone(&tel));
        {
            let mut pipeline = QueryPipeline::new(&cluster, 4)
                .expect("pipeline window")
                .with_telemetry(&tel);
            for q in &queries {
                let _ = pipeline.submit(q).expect("pipeline submit");
            }
            let _ = pipeline.collect().expect("pipeline collect");
        }
        cluster.shutdown();

        // Serving regime: the paper's workload is a long query stream
        // against the same small hot coded shares. Per-query compute is
        // tiny there, so per-round-trip synchronization dominates — the
        // overhead panel batching amortizes. The w16 pipeline on the
        // *same* cluster and stream is the apples-to-apples baseline for
        // the batched ns/query numbers; the (48, 96) cases above stay
        // untouched for trajectory comparability.
        let (sm, sl, sq) = if quick { (8, 16, 32) } else { (8, 16, 256) };
        {
            let sa = Matrix::<Fp61>::random(sm, sl, &mut rng);
            let fleet =
                EdgeFleet::from_unit_costs(vec![1.0, 1.3, 1.6, 2.0, 2.5]).expect("valid costs");
            let sys = ScecSystem::build(sa, fleet, AllocationStrategy::Mcscec, &mut rng)
                .expect("system build");
            let cluster = LocalCluster::launch(&sys, &mut rng).expect("cluster launch");
            let squeries: Vec<Vector<Fp61>> =
                (0..sq).map(|_| Vector::random(sl, &mut rng)).collect();
            case("cluster_query_serving_w16", sm, sq, &mut || {
                std::hint::black_box(
                    QueryPipeline::run(&cluster, 16, &squeries).expect("pipeline"),
                );
            });
            case("cluster_query_batched_k8", sm, sq, &mut || {
                std::hint::black_box(PanelPipeline::run(&cluster, 8, 2, &squeries).expect("panel"));
            });
            case("cluster_query_batched_k32", sm, sq, &mut || {
                std::hint::black_box(
                    PanelPipeline::run(&cluster, 32, 2, &squeries).expect("panel"),
                );
            });
            // Untimed instrumented panel drain: the snapshot's telemetry
            // section then carries the panel-width histogram and the
            // per-window amortized cost ledger alongside the per-query
            // pipeline metrics recorded above.
            let cluster = cluster.with_telemetry(Arc::clone(&tel));
            let _ = PanelPipeline::run(&cluster, 8, 2, &squeries).expect("panel drain");
            cluster.shutdown();
        }
        render_telemetry(&tel)
    };

    // General (Gaussian) decode with and without the cached DecodePlan:
    // per-query elimination re-solves `B z = BTx` from scratch; the plan
    // factorizes `B` once and replays O(n²) triangular solves.
    let (dm, dr) = if quick { (28, 4) } else { (112, 16) };
    {
        let ddesign = CodeDesign::new(dm, dr).expect("valid design");
        let dn = ddesign.total_rows();
        let db = ddesign.encoding_matrix::<Fp61>();
        let dbtx = Vector::<Fp61>::random(dn, &mut rng);
        let mut plan = DecodePlan::structured(&ddesign).expect("plan");
        case("fp61_decode_general_gauss", dn, dn * dn * dn, &mut || {
            std::hint::black_box(
                decode::decode_general(&ddesign, &db, &dbtx).expect("general decode"),
            );
        });
        case("fp61_decode_general_planned", dn, dn * dn * dn, &mut || {
            std::hint::black_box(plan.decode(&dbtx).expect("planned decode"));
        });
    }

    // DST event-loop throughput: one seeded fleet-scenario campaign end
    // to end on the indexed event set. `ops` is the event count of the
    // (deterministic) run, so ns_per_op reads as ns per simulation
    // event and the trajectory tracks events/sec at fleet scale.
    {
        let (fleet_devices, fleet_queries) = if quick { (14, 40) } else { (140, 2_000) };
        let scenario = scec_dst::find_scenario("diurnal").expect("in catalog");
        let dconfig = scenario.config(Some(fleet_devices), Some(fleet_queries));
        let steps = scec_dst::Simulation::new(dconfig.clone(), 1)
            .expect("valid scenario config")
            .run()
            .steps;
        case("dst_events", fleet_devices, steps, &mut || {
            let report = scec_dst::Simulation::new(dconfig.clone(), 1)
                .expect("valid scenario config")
                .run();
            std::hint::black_box(report.steps);
        });
    }

    // Adaptive drift recovery vs its static twin, same seed and scale:
    // the speed-drift campaign with the telemetry-driven allocator
    // re-planning mid-epoch, against the offline TA-1 plan held static.
    // `ops` is the run's event count for both, so the ns_per_op gap
    // prices the adaptive machinery itself, and the recorded run must
    // stay oracle-clean — the static case doubles as the no-regression
    // guard (an armed allocator may not slow or perturb a run it never
    // triggers in).
    {
        let (drift_devices, drift_queries) = if quick { (7, 24) } else { (14, 400) };
        let scenario = scec_dst::find_scenario("speed-drift").expect("in catalog");
        let aconfig = scenario.config(Some(drift_devices), Some(drift_queries));
        let mut sconfig = aconfig.clone();
        sconfig.adaptive = None;
        sconfig.rateless = false;
        sconfig.slo = None;
        let steps = scec_dst::Simulation::new(aconfig.clone(), 1)
            .expect("valid scenario config")
            .run()
            .steps;
        case("adaptive_drift_recovery", drift_devices, steps, &mut || {
            let report = scec_dst::Simulation::new(aconfig.clone(), 1)
                .expect("valid scenario config")
                .run();
            assert!(report.violation.is_none(), "bench run must stay clean");
            std::hint::black_box((report.reallocations, report.makespan_ms));
        });
        let static_steps = scec_dst::Simulation::new(sconfig.clone(), 1)
            .expect("valid scenario config")
            .run()
            .steps;
        case(
            "adaptive_static_no_regression",
            drift_devices,
            static_steps,
            &mut || {
                let report = scec_dst::Simulation::new(sconfig.clone(), 1)
                    .expect("valid scenario config")
                    .run();
                assert_eq!(report.reallocations, 0);
                std::hint::black_box(report.makespan_ms);
            },
        );
    }

    // Serving tier over real loopback TCP: the same serving-regime
    // stream as `cluster_query_serving_w16`, but every frame crosses
    // the scec-wire codec and a socket — the ns/query gap between the
    // two cases is the measured price of the wire.
    {
        let server = scec_serve::DeviceServer::bind::<Fp61>(
            "127.0.0.1:0",
            scec_serve::ServerConfig::default(),
        )
        .expect("bind loopback server");
        let addr = server.local_addr();
        let (sm, sl, sq) = if quick { (8, 16, 32) } else { (8, 16, 256) };
        {
            let sa = Matrix::<Fp61>::random(sm, sl, &mut rng);
            let fleet =
                EdgeFleet::from_unit_costs(vec![1.0, 1.3, 1.6, 2.0, 2.5]).expect("valid costs");
            let sys = ScecSystem::build(sa, fleet, AllocationStrategy::Mcscec, &mut rng)
                .expect("system build");
            let cluster = LocalCluster::launch_with_transport(
                &sys,
                &mut rng,
                Arc::new(scec_runtime::RealClock::default()) as Arc<dyn scec_runtime::Clock>,
                |shares| {
                    let ids: Vec<usize> = shares.iter().map(|s| s.device()).collect();
                    scec_serve::TcpTransport::connect(addr, 0, &ids)
                        .map(|(t, rx, _meter)| (Box::new(t) as _, rx))
                        .map_err(|_| scec_runtime::Error::ChannelClosed { device: None })
                },
            )
            .expect("tcp cluster launch");
            let squeries: Vec<Vector<Fp61>> =
                (0..sq).map(|_| Vector::random(sl, &mut rng)).collect();
            case("serve_loopback_w16", sm, sq, &mut || {
                std::hint::black_box(
                    QueryPipeline::run(&cluster, 16, &squeries).expect("pipeline"),
                );
            });
            cluster.shutdown();
        }

        // The full sharded tier: 64 tenants, each its own SCEC instance,
        // panel pipelines under the global admission gate, all against
        // the one server bound above. `ops` is the query count, so
        // ns_per_op reads as ns per query at 64-tenant concurrency
        // (setup — 64 allocations + ~320 connections — is timed too;
        // it is part of what the tier costs to stand up).
        let (tq, tw) = if quick { (16, 2) } else { (64, 4) };
        let load = scec_serve::LoadConfig {
            tenants: 64,
            queries_per_tenant: tq,
            panel_width: 16,
            window: tw,
            rows: 8,
            cols: 16,
            seed: 0x5CEC,
            max_in_flight: 0,
            adaptive: false,
            trace: false,
        };
        case("load_tenants_64", 64, 64 * tq, &mut || {
            let report = scec_serve::Router::new(load.clone())
                .expect("load config")
                .run(addr)
                .expect("load run");
            assert!(
                report.failures.is_empty(),
                "tenants failed: {:?}",
                report.failures
            );
            std::hint::black_box(report.total_queries);
        });

        // Distributed-tracing overhead: the identical small tier with
        // tracing off and on. The on case pays the 17-byte context
        // block per frame each way plus per-span id minting; the
        // ns/query gap between the two cases is the whole tracing tax
        // (budgeted at <5% — compare the pair in the snapshot).
        let trace_off = scec_serve::LoadConfig {
            tenants: 4,
            queries_per_tenant: tq,
            panel_width: 16,
            window: tw,
            rows: 8,
            cols: 16,
            seed: 0x5CEC,
            max_in_flight: 0,
            adaptive: false,
            trace: false,
        };
        let trace_on = scec_serve::LoadConfig {
            trace: true,
            ..trace_off.clone()
        };
        for (name, cfg) in [
            ("load_tracing_off_t4", &trace_off),
            ("load_tracing_on_t4", &trace_on),
        ] {
            case(name, 4, 4 * tq, &mut || {
                let report = scec_serve::Router::new(cfg.clone())
                    .expect("load config")
                    .run(addr)
                    .expect("load run");
                assert!(report.failures.is_empty(), "{:?}", report.failures);
                std::hint::black_box(report.total_queries);
            });
        }
        server.shutdown();
    }
    (results, telemetry)
}

/// Renders the cluster-case telemetry as a JSON object for embedding in
/// the `BENCH_<n>.json` snapshot: the metrics registry, the per-device
/// predicted-vs-observed cost ledger, and the process-global field-op
/// counters (zero when the `telemetry` feature is off).
fn render_telemetry(tel: &Telemetry) -> String {
    format!(
        "{{\n    \"telemetry_feature\": {},\n    \"global_field_mults\": {},\n    \
         \"global_field_adds\": {},\n    \"metrics\": {},\n    \"costs\": {}\n  }}",
        cfg!(feature = "telemetry"),
        ops::mults(),
        ops::adds(),
        tel.registry.snapshot().render_json(),
        tel.costs.report().render_json()
    )
}

/// Picks the next snapshot index: one past the largest `BENCH_<n>.json`
/// already present (0 for a fresh directory).
fn next_index(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let n = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            n.parse::<usize>().ok()
        })
        .max()
        .map_or(0, |n| n + 1)
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => r#"\""#.chars().collect::<Vec<_>>(),
            '\\' => r"\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render_json(opts: &BenchOptions, index: usize, cases: &[CaseResult], telemetry: &str) -> String {
    let captured_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"scec-bench-v1\",");
    let _ = writeln!(j, "  \"index\": {index},");
    let _ = writeln!(j, "  \"captured_at_unix\": {captured_at},");
    let _ = writeln!(j, "  \"iters\": {},", opts.iters);
    let _ = writeln!(j, "  \"quick\": {},", opts.quick);
    let _ = writeln!(j, "  \"machine\": {{");
    let _ = writeln!(j, "    \"cpu\": \"{}\",", json_escape(&cpu_model()));
    let _ = writeln!(j, "    \"cores\": {},", kernels::max_threads());
    let _ = writeln!(j, "    \"os\": \"{}\",", json_escape(std::env::consts::OS));
    let _ = writeln!(
        j,
        "    \"arch\": \"{}\",",
        json_escape(std::env::consts::ARCH)
    );
    let _ = writeln!(
        j,
        "    \"parallel_feature\": {}",
        cfg!(feature = "parallel")
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"telemetry\": {telemetry},");
    let _ = writeln!(j, "  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let ns_per_op = c.median_ns as f64 / c.ops.max(1) as f64;
        let _ = writeln!(
            j,
            "    {{ \"name\": \"{}\", \"size\": {}, \"ops\": {}, \
             \"median_ns\": {}, \"ns_per_op\": {:.4} }}{}",
            c.name,
            c.size,
            c.ops,
            c.median_ns,
            ns_per_op,
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// `scec bench`: run the suite and write `BENCH_<n>.json`.
///
/// Returns the human-readable summary (one line per case plus the output
/// path), like the other command functions.
///
/// # Errors
///
/// Returns [`Error::Usage`] for `--iters 0` and propagates I/O failures.
pub fn run(opts: &BenchOptions) -> Result<String> {
    if opts.iters == 0 {
        return Err(Error::Usage("--iters must be at least 1".into()));
    }
    let (cases, telemetry) = run_suite(opts.iters, opts.quick);
    let index = opts.index.unwrap_or_else(|| next_index(&opts.out_dir));
    std::fs::create_dir_all(&opts.out_dir)?;
    let path = opts.out_dir.join(format!("BENCH_{index}.json"));
    std::fs::write(&path, render_json(opts, index, &cases, &telemetry))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench snapshot {index} ({} iters{}, {} threads max)",
        opts.iters,
        if opts.quick { ", quick" } else { "" },
        kernels::max_threads()
    );
    for c in &cases {
        let _ = writeln!(
            out,
            "  {:<26} n={:<5} median = {:>12} ns  ({:.4} ns/op)",
            c.name,
            c.size,
            c.median_ns,
            c.median_ns as f64 / c.ops.max(1) as f64
        );
    }
    let _ = writeln!(out, "wrote {}", path.display());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scec-bench-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quick_suite_writes_parseable_snapshot() {
        let dir = tmp_dir("quick");
        let opts = BenchOptions {
            out_dir: dir.clone(),
            iters: 1,
            index: None,
            quick: true,
        };
        let summary = run(&opts).unwrap();
        assert!(summary.contains("fp61_matmul_lazy"));
        let json = std::fs::read_to_string(dir.join("BENCH_0.json")).unwrap();
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"scec-bench-v1\""));
        assert!(json.contains("\"fp61_matmul_naive\""));
        assert!(json.contains("\"scec_encode_query_decode\""));
        assert!(json.contains("\"cluster_query_sequential\""));
        assert!(json.contains("\"cluster_query_pipelined_w4\""));
        assert!(json.contains("\"cluster_query_pipelined_w16\""));
        assert!(json.contains("\"cluster_query_serving_w16\""));
        assert!(json.contains("\"cluster_query_batched_k8\""));
        assert!(json.contains("\"cluster_query_batched_k32\""));
        assert!(json.contains("\"serve_loopback_w16\""));
        assert!(json.contains("\"load_tenants_64\""));
        assert!(json.contains("\"fp61_matmul_simd\""));
        assert!(json.contains("\"fp61_decode_general_gauss\""));
        assert!(json.contains("\"fp61_decode_general_planned\""));
        assert!(json.contains("\"parallel_feature\""));
        // The embedded telemetry section from the cluster cases.
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"telemetry_feature\""));
        assert!(json.contains("\"global_field_mults\""));
        assert!(json.contains("\"costs\""));
        #[cfg(feature = "telemetry")]
        {
            assert!(json.contains("scec_queries_total"));
            assert!(json.contains("scec_pipeline_window_occupancy"));
        }
        // Balanced braces and brackets — cheap well-formedness check in
        // lieu of a JSON parser dependency.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        // No trailing comma before a closing bracket.
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_auto_increments_and_can_be_pinned() {
        let dir = tmp_dir("index");
        assert_eq!(next_index(&dir), 0);
        std::fs::write(dir.join("BENCH_4.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_2.json"), "{}").unwrap();
        std::fs::write(dir.join("not-a-bench.json"), "{}").unwrap();
        assert_eq!(next_index(&dir), 5);
        let opts = BenchOptions {
            out_dir: dir.clone(),
            iters: 1,
            index: Some(9),
            quick: true,
        };
        run(&opts).unwrap();
        assert!(dir.join("BENCH_9.json").exists());
        assert_eq!(next_index(&dir), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_iters_is_a_usage_error() {
        let opts = BenchOptions {
            iters: 0,
            ..BenchOptions::default()
        };
        assert!(matches!(run(&opts), Err(Error::Usage(_))));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
