//! Library backing the `scec` command-line tool.
//!
//! The binary is a thin argument parser over the functions in
//! [`commands`], which are pure enough to unit-test: they read/write CSV
//! matrices ([`csv`]) and wire-framed share files (`scec-wire`), and
//! return their human-readable output as a `String`.
//!
//! ```text
//! scec plan   --m 100 --costs 1.0,1.5,2.0,4.0
//! scec deploy --data a.csv --costs 1.0,1.5,2.0,4.0 --out shares/
//! scec query  --shares shares/ --input x.csv --output y.csv
//! scec audit  --shares shares/
//! scec chaos  --devices 6 --queries 8 --intensity 0.4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod commands;
pub mod csv;
pub mod error;

pub use error::{Error, Result};
