//! Minimal CSV matrix I/O for the CLI.
//!
//! Values are plain decimal numbers separated by commas, one matrix row
//! per line. Two payload interpretations are supported: `f64` (any float
//! syntax Rust's parser accepts) and [`Fp61`] (non-negative integers
//! below the field modulus).

use std::path::Path;

use scec_linalg::{Fp61, Matrix, Vector};

use crate::error::{Error, Result};

fn parse_rows<T>(text: &str, parse: impl Fn(&str, usize) -> Result<T>) -> Result<Vec<Vec<T>>> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row = line
            .split(',')
            .map(|cell| parse(cell.trim(), idx + 1))
            .collect::<Result<Vec<T>>>()?;
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(Error::Csv {
            line: 0,
            reason: "no data rows".into(),
        });
    }
    let width = rows[0].len();
    for (idx, row) in rows.iter().enumerate() {
        if row.len() != width {
            return Err(Error::Csv {
                line: idx + 1,
                reason: format!("expected {width} cells, found {}", row.len()),
            });
        }
    }
    Ok(rows)
}

fn parse_f64(cell: &str, line: usize) -> Result<f64> {
    cell.parse::<f64>().map_err(|e| Error::Csv {
        line,
        reason: format!("bad float {cell:?}: {e}"),
    })
}

fn parse_fp61(cell: &str, line: usize) -> Result<Fp61> {
    let raw: u64 = cell.parse().map_err(|e| Error::Csv {
        line,
        reason: format!("bad integer {cell:?}: {e}"),
    })?;
    if raw >= scec_linalg::fp::MODULUS {
        return Err(Error::Csv {
            line,
            reason: format!("{raw} exceeds the GF(2^61-1) modulus"),
        });
    }
    Ok(Fp61::new(raw))
}

/// Parses an `f64` matrix from CSV text.
///
/// # Errors
///
/// Returns [`Error::Csv`] for unparseable cells or ragged rows.
pub fn matrix_f64_from_str(text: &str) -> Result<Matrix<f64>> {
    let rows = parse_rows(text, parse_f64)?;
    Matrix::from_rows(rows).map_err(|e| Error::Csv {
        line: 0,
        reason: e.to_string(),
    })
}

/// Parses a GF(2⁶¹−1) matrix from CSV text (non-negative integers).
///
/// # Errors
///
/// Returns [`Error::Csv`] for unparseable or out-of-range cells.
pub fn matrix_fp61_from_str(text: &str) -> Result<Matrix<Fp61>> {
    let rows = parse_rows(text, parse_fp61)?;
    Matrix::from_rows(rows).map_err(|e| Error::Csv {
        line: 0,
        reason: e.to_string(),
    })
}

/// Reads a GF(2⁶¹−1) matrix from a CSV file.
///
/// # Errors
///
/// Propagates I/O and parse failures.
pub fn read_matrix_fp61(path: &Path) -> Result<Matrix<Fp61>> {
    matrix_fp61_from_str(&std::fs::read_to_string(path)?)
}

/// Writes a GF(2⁶¹−1) matrix as CSV.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_matrix_fp61(path: &Path, m: &Matrix<Fp61>) -> Result<()> {
    let mut out = String::new();
    for row in m.rows_iter() {
        let cells: Vec<String> = row.iter().map(|v| v.residue().to_string()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Writes a GF(2⁶¹−1) vector as one-column CSV.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_vector_fp61(path: &Path, v: &Vector<Fp61>) -> Result<()> {
    let mut out = String::new();
    for x in v.as_slice() {
        out.push_str(&x.residue().to_string());
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Reads a GF(2⁶¹−1) vector (single column, or a single row) from CSV.
///
/// # Errors
///
/// Propagates I/O and parse failures.
pub fn read_vector_fp61(path: &Path) -> Result<Vector<Fp61>> {
    let m = read_matrix_fp61(path)?;
    if m.ncols() == 1 {
        Ok(m.col(0))
    } else if m.nrows() == 1 {
        Ok(Vector::from_vec(m.row(0).to_vec()))
    } else {
        Err(Error::Csv {
            line: 0,
            reason: format!(
                "expected a vector, found a {}x{} matrix",
                m.nrows(),
                m.ncols()
            ),
        })
    }
}

/// Parses a comma-separated list of positive unit costs (for `--costs`).
///
/// # Errors
///
/// Returns [`Error::Usage`] for unparseable entries.
pub fn parse_costs(spec: &str) -> Result<Vec<f64>> {
    spec.split(',')
        .map(|cell| {
            cell.trim()
                .parse::<f64>()
                .map_err(|e| Error::Usage(format!("bad cost {cell:?}: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_matrix_parses() {
        let m = matrix_f64_from_str("1.5, 2\n3, -4.25\n").unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.at(1, 1), -4.25);
    }

    #[test]
    fn fp61_matrix_parses_and_validates() {
        let m = matrix_fp61_from_str("1,2\n3,4\n").unwrap();
        assert_eq!(m.at(1, 0).residue(), 3);
        assert!(matrix_fp61_from_str("1,notanumber\n").is_err());
        assert!(matrix_fp61_from_str(&format!("{}\n", u64::MAX)).is_err());
        assert!(matrix_fp61_from_str("-1\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let m = matrix_fp61_from_str("# header\n\n1,2\n# mid\n3,4\n").unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn ragged_rows_are_rejected_with_line_number() {
        match matrix_fp61_from_str("1,2\n3\n") {
            Err(Error::Csv { line: 2, .. }) => {}
            other => panic!("expected line-2 CSV error, got {other:?}"),
        }
        assert!(matrix_fp61_from_str("").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("scec_cli_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        let m = matrix_fp61_from_str("10,20,30\n40,50,60\n").unwrap();
        write_matrix_fp61(&path, &m).unwrap();
        assert_eq!(read_matrix_fp61(&path).unwrap(), m);
        let vpath = dir.join("v.csv");
        let v = Vector::from_vec(vec![Fp61::new(7), Fp61::new(8)]);
        write_vector_fp61(&vpath, &v).unwrap();
        assert_eq!(read_vector_fp61(&vpath).unwrap(), v);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vector_shapes() {
        // Row-shaped vector is accepted too.
        let dir = std::env::temp_dir().join("scec_cli_csv_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("row.csv");
        std::fs::write(&path, "1,2,3\n").unwrap();
        assert_eq!(read_vector_fp61(&path).unwrap().len(), 3);
        std::fs::write(&path, "1,2\n3,4\n").unwrap();
        assert!(read_vector_fp61(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_lists() {
        assert_eq!(parse_costs("1.0, 2.5,3").unwrap(), vec![1.0, 2.5, 3.0]);
        assert!(parse_costs("1.0,x").is_err());
    }
}
