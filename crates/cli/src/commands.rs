//! The CLI's commands, as testable library functions.
//!
//! All payloads are GF(2⁶¹−1) (integers in CSV files); shares on disk use
//! the framed `scec-wire` format. A deployment directory contains
//! `design.bin` (the [`CodeDesign`]) plus one `device-<j>.share` per
//! participating device.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::StdRng, SeedableRng};

use scec_allocation::{bound, EdgeFleet};
use scec_coding::{decode, CodeDesign, DeviceShare, StragglerCode, StragglerShare, TPrivateCode};
use scec_core::{AllocationStrategy, ScecSystem};
use scec_linalg::Fp61;
use scec_linalg::Vector;
use scec_runtime::{
    CostVector, DeviceBehavior, QueryPipeline, Stage, SupervisedCluster, SupervisorConfig,
    Telemetry, Verbosity,
};
use scec_sim::adversary::{ChaosPlan, PassiveAdversary};
use scec_sim::CostDistribution;
use scec_wire::{decode_framed, encode_framed, tag};

use crate::csv;
use crate::error::{Error, Result};

/// `scec plan`: show the optimal allocation for `m` data rows over a
/// fleet, next to the lower bound and baselines.
///
/// # Errors
///
/// Returns usage/domain errors for invalid fleets or `m = 0`.
pub fn plan(m: usize, costs: &[f64]) -> Result<String> {
    let fleet = EdgeFleet::from_unit_costs(costs.to_vec())?;
    let plan = scec_allocation::ta::ta1(m, &fleet)?;
    let lb = bound::lower_bound(m, &fleet)?;
    let mut out = String::new();
    let _ = writeln!(out, "MCSCEC allocation for m = {m}, k = {}", fleet.len());
    let _ = writeln!(out, "  random rows r   = {}", plan.random_rows());
    let _ = writeln!(out, "  devices used i  = {}", plan.device_count());
    let _ = writeln!(out, "  loads           = {:?}", plan.loads());
    let _ = writeln!(out, "  total cost      = {:.4}", plan.total_cost());
    let _ = writeln!(out, "  lower bound     = {:.4}", lb);
    let _ = writeln!(
        out,
        "  gap to bound    = {:.4}%",
        (plan.total_cost() / lb - 1.0) * 100.0
    );
    for (name, p) in [
        ("MaxNode", scec_allocation::baselines::max_node(m, &fleet)?),
        ("MinNode", scec_allocation::baselines::min_node(m, &fleet)?),
    ] {
        let _ = writeln!(
            out,
            "  {name:<8} cost   = {:.4}  (+{:.2}%)",
            p.total_cost(),
            (p.total_cost() / plan.total_cost() - 1.0) * 100.0
        );
    }
    Ok(out)
}

/// `scec deploy`: encode a CSV data matrix and write per-device share
/// files plus the design descriptor into `out_dir`. With
/// `redundancy > 0`, deploys a straggler-tolerant code instead: extra
/// random rows on standby devices, tagged shares on disk.
///
/// # Errors
///
/// Propagates CSV, I/O, and domain failures.
pub fn deploy(
    data_path: &Path,
    costs: &[f64],
    out_dir: &Path,
    seed: u64,
    redundancy: usize,
) -> Result<String> {
    let a = csv::read_matrix_fp61(data_path)?;
    let fleet = EdgeFleet::from_unit_costs(costs.to_vec())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let system = ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, &mut rng)?;
    std::fs::create_dir_all(out_dir)?;
    let mut out = String::new();
    let mut total_bytes = 0;
    let (shares_written, total_rows, devices) = if redundancy > 0 {
        let code = StragglerCode::<Fp61>::new(system.design().clone(), redundancy, &mut rng)?;
        let store = code.encode(&a, &mut rng)?;
        std::fs::write(
            out_dir.join("straggler-design.bin"),
            encode_framed(&code, tag::STRAGGLER_SHARE),
        )?;
        for share in store.shares() {
            let bytes = encode_framed(share, tag::STRAGGLER_SHARE);
            total_bytes += bytes.len();
            std::fs::write(
                out_dir.join(format!("device-{}.share", share.device())),
                bytes,
            )?;
        }
        let _ = writeln!(
            out,
            "straggler mode: s = {} redundant rows on {} standby devices; any {} of {} rows decode",
            redundancy,
            code.standby_devices(),
            code.rows_needed(),
            code.total_rows()
        );
        (store.shares().len(), code.total_rows(), code.device_count())
    } else {
        let deployment = system.distribute(&mut rng)?;
        std::fs::write(
            out_dir.join("design.bin"),
            encode_framed(system.design(), tag::DEVICE_SHARE),
        )?;
        for device in deployment.devices() {
            let bytes = encode_framed(device.share(), tag::DEVICE_SHARE);
            total_bytes += bytes.len();
            std::fs::write(
                out_dir.join(format!("device-{}.share", device.device())),
                bytes,
            )?;
        }
        (
            deployment.devices().len(),
            system.design().total_rows(),
            system.plan().device_count(),
        )
    };
    let _ = writeln!(
        out,
        "deployed m = {} rows as {} coded rows over {} devices",
        system.design().data_rows(),
        total_rows,
        devices
    );
    let _ = writeln!(
        out,
        "wrote {} share files ({} bytes) to {}",
        shares_written,
        total_bytes,
        out_dir.display()
    );
    let _ = writeln!(out, "allocation cost = {:.4}", system.plan().total_cost());
    Ok(out)
}

fn load_deployment(shares_dir: &Path) -> Result<(CodeDesign, Vec<DeviceShare<Fp61>>)> {
    let design_bytes = std::fs::read(shares_dir.join("design.bin"))?;
    let design: CodeDesign = decode_framed(&design_bytes, tag::DEVICE_SHARE)?;
    let mut shares = Vec::with_capacity(design.device_count());
    for j in 1..=design.device_count() {
        let bytes = std::fs::read(shares_dir.join(format!("device-{j}.share")))?;
        let share: DeviceShare<Fp61> = decode_framed(&bytes, tag::DEVICE_SHARE)?;
        if share.device() != j {
            return Err(Error::Domain(format!(
                "share file device-{j}.share claims device {}",
                share.device()
            )));
        }
        if share.load() != design.device_load(j)? {
            return Err(Error::Domain(format!(
                "share file device-{j}.share has {} rows, design expects {}",
                share.load(),
                design.device_load(j)?
            )));
        }
        shares.push(share);
    }
    Ok((design, shares))
}

/// `scec deploy-private`: deploy with a `t`-collusion-resistant code
/// (dense blinding, load cap `v`) instead of the structured design.
///
/// # Errors
///
/// Propagates CSV, I/O, and domain failures.
pub fn deploy_private(
    data_path: &Path,
    out_dir: &Path,
    seed: u64,
    threshold: usize,
    load_cap: usize,
) -> Result<String> {
    let a = csv::read_matrix_fp61(data_path)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let code = TPrivateCode::<Fp61>::new(a.nrows(), threshold, load_cap, &mut rng)?;
    let store = code.encode(&a, &mut rng)?;
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(
        out_dir.join("tprivate-design.bin"),
        encode_framed(&code, tag::DEVICE_SHARE),
    )?;
    let mut total_bytes = 0;
    for share in store.shares() {
        // Reuse the plain share container: device index + first row +
        // payload fully describe a t-private share.
        let wire_share =
            DeviceShare::from_parts(share.device(), share.first_row(), share.coded().clone());
        let bytes = encode_framed(&wire_share, tag::DEVICE_SHARE);
        total_bytes += bytes.len();
        std::fs::write(
            out_dir.join(format!("device-{}.share", share.device())),
            bytes,
        )?;
    }
    Ok(format!(
        "deployed {}x{} data {}-privately: {} devices (load cap {}), {} coded rows, {} bytes -> {}
",
        a.nrows(),
        a.ncols(),
        threshold,
        code.device_count(),
        load_cap,
        code.total_rows(),
        total_bytes,
        out_dir.display()
    ))
}

fn load_private_deployment(
    shares_dir: &Path,
) -> Result<(TPrivateCode<Fp61>, Vec<DeviceShare<Fp61>>)> {
    let code_bytes = std::fs::read(shares_dir.join("tprivate-design.bin"))?;
    let code: TPrivateCode<Fp61> = decode_framed(&code_bytes, tag::DEVICE_SHARE)?;
    let mut shares = Vec::with_capacity(code.device_count());
    for j in 1..=code.device_count() {
        let bytes = std::fs::read(shares_dir.join(format!("device-{j}.share")))?;
        let share: DeviceShare<Fp61> = decode_framed(&bytes, tag::DEVICE_SHARE)?;
        let expected = code.device_rows(j)?;
        if share.device() != j
            || share.first_row() != expected.start
            || share.load() != expected.len()
        {
            return Err(Error::Domain(format!(
                "share file device-{j}.share does not match the t-private design"
            )));
        }
        shares.push(share);
    }
    Ok((code, shares))
}

/// Records one simulated device's round into a query telemetry snapshot:
/// predicted per-query cost (unit cost 1.0 — share files carry no fleet
/// prices), the matching observed bytes/rows/flops, and the compute
/// span. `tagged` marks straggler responses (value + u64 row tag).
fn record_query_device(
    tel: &Telemetry,
    at: Duration,
    dur: Duration,
    device: usize,
    rows: u64,
    l: u64,
    tagged: bool,
) {
    let esize = std::mem::size_of::<Fp61>() as u64;
    let row_bytes = if tagged { esize + 8 } else { esize };
    let per_query = CostVector {
        stored_rows: rows,
        rows_served: rows,
        bytes_sent: l * esize,
        bytes_received: rows * row_bytes,
        field_mults: rows * l,
        field_adds: rows * l.saturating_sub(1),
    };
    tel.costs.record_stored(device, rows);
    tel.costs.set_predicted(device, 1.0, per_query);
    tel.costs.record_sent(device, l * esize);
    tel.costs.record_received(device, rows * row_bytes, rows);
    tel.costs
        .record_compute(device, rows * l, rows * l.saturating_sub(1));
    tel.tracer
        .span(at, dur, Stage::DeviceCompute, Some(0), Some(device));
}

/// `scec query`: load a deployment directory, compute `y = A·x` securely
/// (devices simulated locally from their share files), write `y` as CSV.
/// Straggler deployments decode via the tagged quorum path. With
/// `metrics_out`, a telemetry snapshot of the round — per-device
/// predicted vs. observed cost and the compute/decode spans — is
/// written alongside.
///
/// # Errors
///
/// Propagates CSV, I/O, wire, and decode failures.
pub fn query(
    shares_dir: &Path,
    input: &Path,
    output: &Path,
    metrics_out: Option<&Path>,
) -> Result<String> {
    let x = csv::read_vector_fp61(input)?;
    let tel = metrics_out.map(|_| Telemetry::new());
    let clock = std::time::Instant::now();
    let l = x.len() as u64;
    let mut out;
    if shares_dir.join("tprivate-design.bin").exists() {
        let (code, shares) = load_private_deployment(shares_dir)?;
        let mut btx = Vec::new();
        for share in &shares {
            let at = clock.elapsed();
            let partial = share.compute(&x)?;
            if let Some(t) = &tel {
                let rows = partial.len() as u64;
                record_query_device(t, at, clock.elapsed() - at, share.device(), rows, l, false);
            }
            btx.extend(partial.into_vec());
        }
        let at = clock.elapsed();
        let y = code.decode(&Vector::from_vec(btx))?;
        if let Some(t) = &tel {
            t.tracer
                .span(at, clock.elapsed() - at, Stage::Decode, Some(0), None);
            t.costs.record_query();
        }
        csv::write_vector_fp61(output, &y)?;
        out = format!(
            "queried {} devices ({}-private mode), decoded {} values -> {}\n",
            shares.len(),
            code.threshold(),
            y.len(),
            output.display()
        );
    } else if shares_dir.join("straggler-design.bin").exists() {
        let (code, shares) = load_straggler_deployment(shares_dir)?;
        let mut responses = Vec::new();
        for share in &shares {
            let at = clock.elapsed();
            let partial = share.compute(&x)?;
            if let Some(t) = &tel {
                let rows = partial.len() as u64;
                record_query_device(t, at, clock.elapsed() - at, share.device(), rows, l, true);
            }
            responses.extend(partial);
        }
        let at = clock.elapsed();
        let y = code.decode(&responses)?;
        if let Some(t) = &tel {
            t.tracer
                .span(at, clock.elapsed() - at, Stage::Decode, Some(0), None);
            t.costs.record_query();
        }
        csv::write_vector_fp61(output, &y)?;
        out = format!(
            "queried {} devices (straggler mode), decoded {} values -> {}\n",
            shares.len(),
            y.len(),
            output.display()
        );
    } else {
        let (design, shares) = load_deployment(shares_dir)?;
        let mut partials = Vec::with_capacity(shares.len());
        for share in &shares {
            let at = clock.elapsed();
            let partial = share.compute(&x)?;
            if let Some(t) = &tel {
                let rows = partial.len() as u64;
                record_query_device(t, at, clock.elapsed() - at, share.device(), rows, l, false);
            }
            partials.push(partial);
        }
        let at = clock.elapsed();
        let btx = decode::stack_partials(&partials);
        let y = decode::decode_fast(&design, &btx)?;
        if let Some(t) = &tel {
            t.tracer
                .span(at, clock.elapsed() - at, Stage::Decode, Some(0), None);
            t.costs.record_query();
        }
        csv::write_vector_fp61(output, &y)?;
        out = format!(
            "queried {} devices, decoded {} values with {} subtractions -> {}\n",
            shares.len(),
            y.len(),
            design.data_rows(),
            output.display()
        );
    }
    if let (Some(t), Some(path)) = (&tel, metrics_out) {
        std::fs::write(path, t.render_json())?;
        let _ = writeln!(out, "telemetry snapshot written to {}", path.display());
    }
    Ok(out)
}

fn load_straggler_deployment(
    shares_dir: &Path,
) -> Result<(StragglerCode<Fp61>, Vec<StragglerShare<Fp61>>)> {
    let code_bytes = std::fs::read(shares_dir.join("straggler-design.bin"))?;
    let code: StragglerCode<Fp61> = decode_framed(&code_bytes, tag::STRAGGLER_SHARE)?;
    let mut shares = Vec::with_capacity(code.device_count());
    for j in 1..=code.device_count() {
        let bytes = std::fs::read(shares_dir.join(format!("device-{j}.share")))?;
        let share: StragglerShare<Fp61> = decode_framed(&bytes, tag::STRAGGLER_SHARE)?;
        if share.device() != j || share.rows() != code.device_rows(j)?.as_slice() {
            return Err(Error::Domain(format!(
                "share file device-{j}.share does not match the straggler design"
            )));
        }
        shares.push(share);
    }
    Ok((code, shares))
}

/// `scec audit`: attack every share file in a deployment directory with
/// the passive adversary (and, with `coalitions > 1`, every coalition up
/// to that size) and report the verdicts.
///
/// The structured design is expected to FAIL coalition audits — the
/// paper's security model is explicitly non-colluding, and the audit
/// makes that boundary visible to operators.
///
/// # Errors
///
/// Propagates I/O/wire failures; an insecure share is reported in the
/// output text (and flagged via the bool), not as an `Err`.
pub fn audit(shares_dir: &Path, seed: u64, coalitions: usize) -> Result<(String, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Straggler deployments: audit every device block (base + standby).
    if shares_dir.join("straggler-design.bin").exists() {
        let (code, shares) = load_straggler_deployment(shares_dir)?;
        let adversary =
            PassiveAdversary::for_dimensions(code.base().data_rows(), code.base().random_rows())
                .with_candidates(4);
        let mut out = String::new();
        let mut all_secure = true;
        for share in &shares {
            let block = code.device_block(share.device())?;
            let verdict = adversary
                .attack_observation(share.device(), &block, share.coded(), &mut rng)
                .map_err(|e| Error::Domain(e.to_string()))?;
            let ok = verdict.is_information_theoretic_secure();
            all_secure &= ok;
            let _ = writeln!(
                out,
                "device {} (straggler mode): leaked = {} -> {}",
                share.device(),
                verdict.leaked_combinations,
                if ok { "SECURE" } else { "LEAK" }
            );
        }
        let _ = writeln!(
            out,
            "audit verdict: {}",
            if all_secure { "SECURE" } else { "LEAK" }
        );
        return Ok((out, all_secure));
    }
    // t-private deployments: audit singles and, if asked, coalitions.
    if shares_dir.join("tprivate-design.bin").exists() {
        let (code, shares) = load_private_deployment(shares_dir)?;
        let adversary = PassiveAdversary::for_dimensions(code.data_rows(), code.random_rows())
            .with_candidates(4);
        let blocks: Vec<_> = (1..=code.device_count())
            .map(|j| code.device_block(j))
            .collect::<std::result::Result<_, _>>()?;
        let mut out = String::new();
        let mut all_secure = true;
        for share in &shares {
            let verdict = adversary
                .attack_observation(
                    share.device(),
                    &blocks[share.device() - 1],
                    share.coded(),
                    &mut rng,
                )
                .map_err(|e| Error::Domain(e.to_string()))?;
            let ok = verdict.is_information_theoretic_secure();
            all_secure &= ok;
            let _ = writeln!(
                out,
                "device {} ({}-private mode): leaked = {} -> {}",
                share.device(),
                code.threshold(),
                verdict.leaked_combinations,
                if ok { "SECURE" } else { "LEAK" }
            );
        }
        if coalitions > 1 {
            // Pairwise coalitions up to the requested size (capped at the
            // code's threshold-relevant pairs for output brevity).
            for j1 in 1..=code.device_count() {
                for j2 in (j1 + 1)..=code.device_count() {
                    let members = vec![
                        (j1, &blocks[j1 - 1], shares[j1 - 1].coded()),
                        (j2, &blocks[j2 - 1], shares[j2 - 1].coded()),
                    ];
                    let verdict = adversary
                        .attack_coalition(&members, &mut rng)
                        .map_err(|e| Error::Domain(e.to_string()))?;
                    let ok = verdict.is_information_theoretic_secure();
                    all_secure &= ok;
                    let _ = writeln!(
                        out,
                        "coalition [{j1}, {j2}]: leaked = {} -> {}",
                        verdict.leaked_combinations,
                        if ok { "SECURE" } else { "LEAK" }
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "audit verdict: {}",
            if all_secure { "SECURE" } else { "LEAK" }
        );
        return Ok((out, all_secure));
    }
    let (design, shares) = load_deployment(shares_dir)?;
    let adversary = PassiveAdversary::new(design.clone()).with_candidates(4);
    let mut out = String::new();
    let mut all_secure = true;
    for share in &shares {
        let verdict = adversary
            .attack(share, &mut rng)
            .map_err(|e| Error::Domain(e.to_string()))?;
        let ok = verdict.is_information_theoretic_secure();
        all_secure &= ok;
        let _ = writeln!(
            out,
            "device {}: leaked = {}, consistent candidates = {}/{} -> {}",
            verdict.device,
            verdict.leaked_combinations,
            verdict.candidates_consistent,
            verdict.candidates_tested,
            if ok { "SECURE" } else { "LEAK" }
        );
    }
    if coalitions > 1 {
        let b = design.encoding_matrix::<Fp61>();
        let blocks: Vec<_> = (1..=design.device_count())
            .map(|j| {
                let range = design.device_row_range(j).expect("j in range");
                b.row_block(range.start, range.end).expect("in range")
            })
            .collect();
        let n = design.device_count();
        // Enumerate all coalitions of size 2..=coalitions.
        fn enumerate(
            from: usize,
            n: usize,
            max: usize,
            coalition: &mut Vec<usize>,
            sink: &mut Vec<Vec<usize>>,
        ) {
            if coalition.len() >= 2 {
                sink.push(coalition.clone());
            }
            if coalition.len() == max {
                return;
            }
            for j in from..=n {
                coalition.push(j);
                enumerate(j + 1, n, max, coalition, sink);
                coalition.pop();
            }
        }
        let mut sink = Vec::new();
        enumerate(1, n, coalitions, &mut Vec::new(), &mut sink);
        for members in sink {
            let parts: Vec<(
                usize,
                &scec_linalg::Matrix<Fp61>,
                &scec_linalg::Matrix<Fp61>,
            )> = members
                .iter()
                .map(|&j| (j, &blocks[j - 1], shares[j - 1].coded()))
                .collect();
            let verdict = adversary
                .attack_coalition(&parts, &mut rng)
                .map_err(|e| Error::Domain(e.to_string()))?;
            let ok = verdict.is_information_theoretic_secure();
            all_secure &= ok;
            let _ = writeln!(
                out,
                "coalition {:?}: leaked = {} -> {}",
                members,
                verdict.leaked_combinations,
                if ok { "SECURE" } else { "LEAK" }
            );
        }
    }
    let _ = writeln!(
        out,
        "audit verdict: {}",
        if all_secure { "SECURE" } else { "LEAK" }
    );
    Ok((out, all_secure))
}

/// `scec chaos`: run a fault-injection drill against a live
/// [`SupervisedCluster`], pipelined through a [`QueryPipeline`].
///
/// A [`ChaosPlan`] is generated from `seed` (faults on at most a
/// minority of the `devices` devices, scaled by `intensity`), mapped
/// onto runtime [`DeviceBehavior`]s, and a supervised cluster serves
/// `queries` matrix–vector queries through the resulting crashes,
/// drops, omissions, and Byzantine corruptions. Every answer is checked
/// against the locally computed `Ax`; the report ends with the
/// per-device health and aggregate statistics. Per-query progress lines
/// and the supervision event dump are printed only at
/// [`Verbosity::Verbose`] — the structured record of the same moments
/// lives in the telemetry snapshot, written to `metrics_out` when
/// given.
///
/// # Errors
///
/// Returns [`Error::Domain`] when the fleet cannot serve the workload
/// (exhaustion, timeout past all retries) or any answer is wrong.
pub fn chaos(
    devices: usize,
    queries: usize,
    intensity: f64,
    seed: u64,
    verbosity: Verbosity,
    metrics_out: Option<&Path>,
) -> Result<String> {
    let plan = ChaosPlan::generate(devices, intensity, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = CostDistribution::uniform(3.0).sample_many(devices, &mut rng);
    let behaviors: Vec<DeviceBehavior> = plan
        .faults
        .iter()
        .map(|&fault| DeviceBehavior::from_fault(fault))
        .collect();
    let a = scec_linalg::Matrix::<Fp61>::random(8, 5, &mut rng);
    let config = SupervisorConfig::default()
        .with_deadline(Duration::from_millis(750))
        .with_backoff(Duration::from_millis(5), 0.5)
        .with_thresholds(1, 2);
    let tel = Arc::new(Telemetry::new().with_verbosity(verbosity));
    let cluster = SupervisedCluster::launch(&a, &costs, &behaviors, config, &mut rng)?
        .with_telemetry(Arc::clone(&tel));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos drill: {devices} devices, intensity {:.2}, seed {seed}",
        plan.intensity
    );
    for (idx, fault) in plan.faults.iter().enumerate() {
        if !fault.is_benign() {
            let _ = writeln!(out, "  device {:>2}: {fault:?}", idx + 1);
        }
    }
    if plan.fault_count() == 0 {
        let _ = writeln!(out, "  (no faults injected)");
    }
    let mut wrong = 0usize;
    {
        let window = queries.clamp(1, 2);
        let mut pipeline = QueryPipeline::new(&cluster, window)?.with_telemetry(&tel);
        // FIFO queue of (query number, expected answer) for results the
        // window hands back, possibly a few submissions later.
        let mut awaiting = std::collections::VecDeque::new();
        let mut check = |out: &mut String,
                         awaiting: &mut std::collections::VecDeque<(usize, Vector<Fp61>)>,
                         result: scec_runtime::SupervisedResult<Fp61>| {
            let (q, expected) = awaiting.pop_front().expect("pipeline results are FIFO");
            let ok = result.value == expected;
            wrong += usize::from(!ok);
            if verbosity >= Verbosity::Verbose {
                let _ = writeln!(
                    out,
                    "query {q:>2}: {}  attempts = {}, degraded = {}, responders = {:?}",
                    if ok { "ok " } else { "BAD" },
                    result.attempts,
                    result.degraded,
                    result.responders
                );
            }
        };
        for q in 1..=queries {
            let x = Vector::<Fp61>::random(a.ncols(), &mut rng);
            let expected = a.matvec(&x).map_err(|e| Error::Domain(e.to_string()))?;
            awaiting.push_back((q, expected));
            if let Some(result) = pipeline.submit(&x)? {
                check(&mut out, &mut awaiting, result);
            }
        }
        for result in pipeline.collect()? {
            check(&mut out, &mut awaiting, result);
        }
    }
    let events = cluster.events();
    if verbosity >= Verbosity::Verbose {
        let _ = writeln!(out, "events:");
        for event in &events {
            let _ = writeln!(out, "  {event:?}");
        }
    } else {
        let _ = writeln!(out, "events: {} (telemetry holds the detail)", events.len());
    }
    let _ = writeln!(out, "health:");
    for h in cluster.health() {
        let _ = writeln!(
            out,
            "  device {:>2}: {:?}, misses = {}, integrity failures = {}, enrolled = {}",
            h.device, h.state, h.consecutive_misses, h.integrity_failures, h.enrolled
        );
    }
    let stats = cluster.stats();
    let _ = writeln!(
        out,
        "stats: queries = {}, retries = {}, degraded = {}, quarantined = {}, repairs = {}",
        stats.count, stats.retries, stats.degraded, stats.quarantined, stats.repairs
    );
    cluster.shutdown();
    if let Some(path) = metrics_out {
        std::fs::write(path, tel.render_json())?;
        let _ = writeln!(out, "telemetry snapshot written to {}", path.display());
    }
    if wrong > 0 {
        return Err(Error::Domain(format!(
            "chaos drill returned {wrong} wrong answers out of {queries}"
        )));
    }
    Ok(out)
}

/// `scec metrics`: serve a canned honest workload through a pipelined
/// [`SupervisedCluster`] with telemetry attached and render the
/// resulting snapshot — Prometheus text exposition by default, the
/// combined `scec-telemetry-v1` JSON document when `json` is set.
///
/// # Errors
///
/// Propagates launch and query failures.
pub fn metrics(devices: usize, queries: usize, seed: u64, json: bool) -> Result<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = CostDistribution::uniform(3.0).sample_many(devices, &mut rng);
    let behaviors = vec![DeviceBehavior::Honest; devices];
    let a = scec_linalg::Matrix::<Fp61>::random(8, 5, &mut rng);
    let tel = Arc::new(Telemetry::new());
    let cluster = SupervisedCluster::launch(
        &a,
        &costs,
        &behaviors,
        SupervisorConfig::default(),
        &mut rng,
    )?
    .with_telemetry(Arc::clone(&tel));
    {
        let window = queries.clamp(1, 4);
        let mut pipeline = QueryPipeline::new(&cluster, window)?.with_telemetry(&tel);
        for _ in 0..queries {
            let x = Vector::<Fp61>::random(a.ncols(), &mut rng);
            let _ = pipeline.submit(&x)?;
        }
        let _ = pipeline.collect()?;
    }
    cluster.shutdown();
    Ok(if json {
        tel.render_json()
    } else {
        tel.render_prometheus()
    })
}

/// Options for [`dst`] — the `scec dst` surface grew past positional
/// arguments once scenario campaigns arrived.
#[derive(Debug, Clone, Default)]
pub struct DstOptions {
    /// Seeds to sweep (ignored when `pinned` is set).
    pub seeds: usize,
    /// First seed of the sweep.
    pub first_seed: u64,
    /// Replay exactly this seed (the `SCEC_DST_SEED` path).
    pub pinned: Option<u64>,
    /// Also exhaust every delivery interleaving of the 3-device config.
    pub explore: bool,
    /// Run a named scenario from the catalog instead of the default
    /// chaos configuration.
    pub scenario: Option<String>,
    /// Override the scenario's fleet size (total devices).
    pub devices: Option<usize>,
    /// Override the scenario's query count.
    pub queries: Option<usize>,
    /// Print the scenario catalog and exit.
    pub list_scenarios: bool,
    /// Write the failing schedule artifact here.
    pub failure_out: Option<PathBuf>,
    /// Write the scec-telemetry-v1 snapshot here.
    pub metrics_out: Option<PathBuf>,
    /// Write the sweep's Chrome trace-event JSON here. The virtual
    /// clock and deterministic span ids make it byte-identical across
    /// same-seed runs — CI diffs two renders to pin replay fidelity.
    pub trace_out: Option<PathBuf>,
}

impl DstOptions {
    /// The defaults `scec dst` uses with no flags: a 50-seed sweep of
    /// the chaos configuration.
    pub fn sweep(seeds: usize, first_seed: u64) -> Self {
        DstOptions {
            seeds,
            first_seed,
            ..DstOptions::default()
        }
    }
}

/// `scec dst`: deterministic simulation testing — sweep seeded schedules
/// through the virtual-time cluster simulation, checking the paper's
/// theorems as oracles after every step. `--scenario NAME` swaps the
/// default chaos configuration for a named adversarial campaign (scaled
/// by `--devices`/`--queries`); `--list-scenarios true` prints the
/// catalog; `--explore true` additionally exhausts every delivery
/// interleaving of the small 3-device configuration.
///
/// Returns the report and whether every oracle held. On a violation, the
/// failing run (seed, decision script, shrunk script, full trace) is
/// rendered into the report and — when `failure_out` is given — written
/// to disk so CI can upload it as an artifact.
///
/// # Errors
///
/// Returns [`Error::Usage`] for an unknown scenario name; propagates
/// world-construction failures and `failure_out` I/O errors.
pub fn dst(options: &DstOptions) -> Result<(String, bool)> {
    let mut out = String::new();
    let mut clean = true;
    if options.list_scenarios {
        let _ = writeln!(out, "scenarios ({} available):", scec_dst::catalog().len());
        for s in scec_dst::catalog() {
            let _ = writeln!(
                out,
                "  {:<14} {:>5} devices {:>6} queries  {}",
                s.name, s.default_devices, s.default_queries, s.summary
            );
        }
        return Ok((out, clean));
    }
    let scenario = match &options.scenario {
        Some(name) => Some(scec_dst::find_scenario(name).ok_or_else(|| {
            let known: Vec<&str> = scec_dst::catalog().iter().map(|s| s.name).collect();
            Error::Usage(format!(
                "unknown scenario {name:?}; available: {}",
                known.join(", ")
            ))
        })?),
        None => None,
    };
    let config = match scenario {
        Some(s) => s.config(options.devices, options.queries),
        None => scec_dst::DstConfig::chaos(),
    };
    let tel = (options.metrics_out.is_some() || options.trace_out.is_some())
        .then(|| Arc::new(Telemetry::new()));
    let sweep = match &tel {
        Some(t) => scec_dst::run_seeds_telemetry(
            &config,
            options.first_seed,
            options.seeds,
            options.pinned,
            t,
        ),
        None => scec_dst::run_seeds(&config, options.first_seed, options.seeds, options.pinned),
    }
    .map_err(|e| Error::Domain(e.to_string()))?;
    match scenario {
        Some(s) => {
            let _ = writeln!(
                out,
                "dst scenario {:?}: {} cells x {} devices, {} runs, {} decoded, \
                 {} failed queries, {} repairs, {} reallocations, {} minted rows",
                s.name,
                config.cells,
                scec_dst::scenarios::pool_size(&config),
                sweep.runs,
                sweep.completed,
                sweep.failed,
                sweep.repairs,
                sweep.reallocations,
                sweep.minted_rows
            );
        }
        None => {
            let _ = writeln!(
                out,
                "dst sweep: {} runs, {} decoded, {} failed queries, {} repairs",
                sweep.runs, sweep.completed, sweep.failed, sweep.repairs
            );
        }
    }
    if let (Some(t), Some(path)) = (&tel, &options.metrics_out) {
        // Virtual-clock telemetry: byte-deterministic for the seed range.
        std::fs::write(path, t.render_json())?;
        let _ = writeln!(out, "telemetry snapshot written to {}", path.display());
    }
    if let (Some(t), Some(path)) = (&tel, &options.trace_out) {
        std::fs::write(path, t.tracer.render_chrome_trace(1))?;
        let _ = writeln!(out, "chrome trace written to {}", path.display());
    }
    if let Some(pin) = options.pinned {
        let _ = writeln!(out, "  (seed pinned to {pin} via {})", scec_dst::SEED_ENV);
    }
    if let Some(failing) = &sweep.failure {
        clean = false;
        let scenario_hint = scenario
            .map(|s| format!(" --scenario {}", s.name))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "ORACLE VIOLATION at seed {} — replay with {}={} scec dst{}",
            failing.seed,
            scec_dst::SEED_ENV,
            failing.seed,
            scenario_hint
        );
        let mut artifact = failing.render();
        if let Some(shrunk) = scec_dst::shrink(&config, failing) {
            let _ = writeln!(
                out,
                "shrunk to {} of {} decisions in {} replays",
                shrunk.script.len(),
                failing.decisions.len(),
                shrunk.attempts
            );
            artifact.push_str("\nshrunk:\n");
            artifact.push_str(&shrunk.report.render());
        }
        out.push_str(&artifact);
        if let Some(path) = &options.failure_out {
            std::fs::write(path, &artifact)?;
            let _ = writeln!(out, "failing schedule written to {}", path.display());
        }
    }
    if options.explore {
        let report = scec_dst::explore(&scec_dst::DstConfig::small(), options.first_seed, 200_000);
        let _ = writeln!(
            out,
            "explorer: {} interleavings, max {} decisions, truncated = {}",
            report.paths, report.max_decisions, report.truncated
        );
        if report.truncated || !report.violations.is_empty() {
            clean = false;
            for (script, violation) in report.violations.iter().take(5) {
                let _ = writeln!(out, "  violation {violation:?} under script {script:?}");
            }
            if report.truncated {
                let _ = writeln!(out, "  (path budget exhausted before full coverage)");
            }
        }
    }
    Ok((out, clean))
}

/// Options for [`serve`], mirroring the `scec serve` flags.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:4070` (port 0 for ephemeral).
    pub addr: String,
    /// Admission cap: tenants with id `>= max_tenants` are refused.
    pub max_tenants: u64,
    /// Exit cleanly once at least one connection was served and all
    /// have closed (smoke tests and CI); otherwise serve until killed.
    pub once: bool,
    /// Bind a scrape listener here (`/metrics`, `/trace`, `/slo`)
    /// and record device-side compute spans for traced queries.
    pub obs_addr: Option<String>,
}

/// `scec serve`: host a GF(2⁶¹−1) device fleet on a TCP listener.
/// Prints the bound address immediately (so scripts can wait for it),
/// then blocks.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(options: &ServeOptions) -> Result<String> {
    let config = scec_serve::ServerConfig {
        max_tenants: options.max_tenants,
        ..scec_serve::ServerConfig::default()
    };
    let tel = options
        .obs_addr
        .as_ref()
        .map(|_| std::sync::Arc::new(scec_telemetry::Telemetry::new()));
    let server =
        scec_serve::DeviceServer::bind_instrumented::<Fp61>(&options.addr, config, tel.clone())?;
    let _scrape = match (&options.obs_addr, tel) {
        (Some(obs_addr), Some(tel)) => {
            let plane = std::sync::Arc::new(scec_serve::ObsPlane::new(
                scec_telemetry::SloConfig::default(),
            ));
            plane.register("device-server", tel);
            let scrape = scec_serve::ScrapeServer::bind(obs_addr, plane)?;
            println!(
                "scec serve: observability on http://{}",
                scrape.local_addr()
            );
            Some(scrape)
        }
        _ => None,
    };
    println!(
        "scec serve: listening on {} (max tenants {}{})",
        server.local_addr(),
        options.max_tenants,
        if options.once {
            ", exiting when idle"
        } else {
            ""
        }
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if !options.once {
        // Serve until the process is killed.
        loop {
            std::thread::park();
        }
    }
    server.wait_idle();
    let stats = server.stats();
    let ordering = std::sync::atomic::Ordering::Acquire;
    let out = format!(
        "served {} queries over {} connections ({} refused, {} closed cleanly)\n",
        stats.queries_served.load(ordering),
        stats.accepted.load(ordering),
        stats.rejected.load(ordering),
        stats.clean_closes.load(ordering),
    );
    server.shutdown();
    Ok(out)
}

/// Options for [`load`], mirroring the `scec load` flags.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server to drive; `None` spawns an in-process loopback server.
    pub addr: Option<String>,
    /// Tenant count.
    pub tenants: usize,
    /// Queries per tenant.
    pub queries: usize,
    /// Panel width (queries per broadcast).
    pub panel: usize,
    /// Panels in flight per tenant.
    pub window: usize,
    /// Global admission cap on in-flight queries (0 = workload max).
    pub cap: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Adaptive allocation: each tenant re-plans over drift-scaled
    /// costs at a mid-stream checkpoint when its cost ledger diverges.
    pub adaptive: bool,
    /// Where to write the JSON load report.
    pub metrics_out: Option<PathBuf>,
    /// Bind a live scrape listener here (`/metrics`, `/trace`, `/slo`)
    /// for the duration of the run; implies tracing.
    pub obs_addr: Option<String>,
    /// Keep the scrape listener up this many seconds after the load
    /// finishes so external scrapers can read the final state.
    pub obs_linger_s: u64,
    /// Write the stitched Chrome trace-event JSON here after the run;
    /// implies tracing (works without any HTTP listener).
    pub trace_out: Option<PathBuf>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        let defaults = scec_serve::LoadConfig::default();
        LoadOptions {
            addr: None,
            tenants: defaults.tenants,
            queries: defaults.queries_per_tenant,
            panel: defaults.panel_width,
            window: defaults.window,
            cap: defaults.max_in_flight,
            seed: defaults.seed,
            adaptive: defaults.adaptive,
            metrics_out: None,
            obs_addr: None,
            obs_linger_s: 0,
            trace_out: None,
        }
    }
}

/// `scec load`: drive a multi-tenant query load through the serving
/// tier and report per-tenant predicted-vs-observed wire bytes, the
/// peak in-flight query count, and p99 latency.
///
/// # Errors
///
/// Returns a domain error when any tenant fails or any result
/// mismatches its tenant's own `A·x` — a clean exit certifies the run.
pub fn load(options: &LoadOptions) -> Result<String> {
    use std::sync::Arc;
    let trace = options.obs_addr.is_some() || options.trace_out.is_some();
    let defaults = scec_serve::LoadConfig::default();
    let config = scec_serve::LoadConfig {
        tenants: options.tenants,
        queries_per_tenant: options.queries,
        panel_width: options.panel,
        window: options.window,
        max_in_flight: options.cap,
        seed: options.seed,
        adaptive: options.adaptive,
        trace,
        ..defaults
    };
    let router = scec_serve::Router::new(config).map_err(|e| Error::Domain(e.to_string()))?;
    let plane = Arc::new(scec_serve::ObsPlane::new(
        scec_telemetry::SloConfig::default(),
    ));
    let (server, addr) = match &options.addr {
        Some(a) => (
            None,
            a.parse::<std::net::SocketAddr>()
                .map_err(|e| Error::Usage(format!("bad --addr {a:?}: {e}")))?,
        ),
        None => {
            // Instrument the loopback fleet when tracing so its
            // device-side compute spans land in the same trace render
            // as the Router's lanes (registered first: pid 1).
            let server_tel = trace.then(|| Arc::new(scec_telemetry::Telemetry::new()));
            if let Some(tel) = &server_tel {
                plane.register("device-server", Arc::clone(tel));
            }
            let server = scec_serve::DeviceServer::bind_instrumented::<Fp61>(
                "127.0.0.1:0",
                scec_serve::ServerConfig {
                    max_tenants: options.tenants as u64,
                    ..scec_serve::ServerConfig::default()
                },
                server_tel,
            )?;
            let addr = server.local_addr();
            (Some(server), addr)
        }
    };
    let scrape = match &options.obs_addr {
        Some(obs_addr) => {
            let scrape = scec_serve::ScrapeServer::bind(obs_addr, Arc::clone(&plane))?;
            println!("scec load: observability on http://{}", scrape.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            Some(scrape)
        }
        None => None,
    };
    let report = router
        .run_observed(addr, &plane)
        .map_err(|e| Error::Domain(e.to_string()))?;
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(path) = &options.metrics_out {
        std::fs::write(path, report.render_json())?;
    }
    if let Some(path) = &options.trace_out {
        std::fs::write(path, plane.render_trace())?;
    }
    let mut out = report.render();
    if let Some(path) = &options.metrics_out {
        let _ = writeln!(out, "load report written to {}", path.display());
    }
    if let Some(path) = &options.trace_out {
        let _ = writeln!(out, "chrome trace written to {}", path.display());
    }
    if let Some(scrape) = scrape {
        // Hold the scrape plane open so CI (or a human with curl) can
        // read the finished run; the metrics-out file doubles as the
        // readiness signal.
        if options.obs_linger_s > 0 {
            std::thread::sleep(std::time::Duration::from_secs(options.obs_linger_s));
        }
        scrape.shutdown();
    }
    if !report.failures.is_empty() {
        return Err(Error::Domain(format!(
            "{} tenants failed (first: tenant {}: {})",
            report.failures.len(),
            report.failures[0].0,
            report.failures[0].1
        )));
    }
    let mismatches: u64 = report.tenants.iter().map(|t| t.mismatches).sum();
    if mismatches > 0 {
        return Err(Error::Domain(format!(
            "{mismatches} results did not match their tenant's A·x"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scec_linalg::Matrix;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scec_cli_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_reports_allocation() {
        let out = plan(100, &[1.0, 1.5, 2.0, 4.0]).unwrap();
        assert!(out.contains("random rows"));
        assert!(out.contains("lower bound"));
        assert!(plan(0, &[1.0, 2.0]).is_err());
        assert!(plan(10, &[1.0]).is_err());
    }

    #[test]
    fn deploy_query_audit_roundtrip() {
        let dir = temp_dir("roundtrip");
        // Write a small data matrix and query vector.
        let data_path = dir.join("a.csv");
        std::fs::write(&data_path, "1,2,3\n4,5,6\n7,8,9\n10,11,12\n").unwrap();
        let shares_dir = dir.join("shares");
        let out = deploy(&data_path, &[1.0, 1.5, 2.0], &shares_dir, 7, 0).unwrap();
        assert!(out.contains("deployed m = 4 rows"));
        assert!(shares_dir.join("design.bin").exists());
        assert!(shares_dir.join("device-1.share").exists());

        let x_path = dir.join("x.csv");
        std::fs::write(&x_path, "1\n1\n1\n").unwrap();
        let y_path = dir.join("y.csv");
        let out = query(&shares_dir, &x_path, &y_path, None).unwrap();
        assert!(out.contains("decoded 4 values"));
        // y = A·[1,1,1] = row sums.
        let y = csv::read_vector_fp61(&y_path).unwrap();
        assert_eq!(
            y.as_slice().iter().map(|v| v.residue()).collect::<Vec<_>>(),
            vec![6, 15, 24, 33]
        );

        let (audit_out, secure) = audit(&shares_dir, 1, 1).unwrap();
        assert!(secure, "{audit_out}");
        assert!(audit_out.contains("audit verdict: SECURE"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_share_file_is_rejected() {
        let dir = temp_dir("corrupt");
        let data_path = dir.join("a.csv");
        std::fs::write(&data_path, "1,2\n3,4\n").unwrap();
        let shares_dir = dir.join("shares");
        deploy(&data_path, &[1.0, 2.0, 3.0], &shares_dir, 3, 0).unwrap();
        // Truncate one share file.
        let victim = shares_dir.join("device-1.share");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let x_path = dir.join("x.csv");
        std::fs::write(&x_path, "1\n1\n").unwrap();
        assert!(query(&shares_dir, &x_path, &dir.join("y.csv"), None).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swapped_share_files_are_detected() {
        let dir = temp_dir("swap");
        let data_path = dir.join("a.csv");
        std::fs::write(&data_path, "1,2\n3,4\n5,6\n").unwrap();
        let shares_dir = dir.join("shares");
        deploy(&data_path, &[1.0, 2.0, 3.0, 4.0], &shares_dir, 5, 0).unwrap();
        // Swap device 1 and 2 share files: the loader must notice the
        // claimed index mismatch.
        let a = std::fs::read(shares_dir.join("device-1.share")).unwrap();
        let b = std::fs::read(shares_dir.join("device-2.share")).unwrap();
        std::fs::write(shares_dir.join("device-1.share"), &b).unwrap();
        std::fs::write(shares_dir.join("device-2.share"), &a).unwrap();
        let x_path = dir.join("x.csv");
        std::fs::write(&x_path, "1\n1\n").unwrap();
        let err = query(&shares_dir, &x_path, &dir.join("y.csv"), None);
        assert!(err.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coalition_audit_exposes_the_non_collusion_boundary() {
        // Single-device audit: SECURE. Pair audit: the structured design
        // must be flagged (the paper's model assumes no collusion).
        let dir = temp_dir("coalition");
        let data_path = dir.join("a.csv");
        std::fs::write(
            &data_path,
            "1,2
3,4
5,6
7,8
",
        )
        .unwrap();
        let shares_dir = dir.join("shares");
        deploy(&data_path, &[1.0, 1.5, 2.0], &shares_dir, 21, 0).unwrap();
        let (_, single_secure) = audit(&shares_dir, 1, 1).unwrap();
        assert!(single_secure);
        let (report, pair_secure) = audit(&shares_dir, 1, 2).unwrap();
        assert!(!pair_secure, "{report}");
        assert!(report.contains("coalition"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn straggler_deploy_query_roundtrip() {
        let dir = temp_dir("straggler");
        let data_path = dir.join("a.csv");
        std::fs::write(
            &data_path,
            "1,2
3,4
5,6
7,8
",
        )
        .unwrap();
        let shares_dir = dir.join("shares");
        let out = deploy(&data_path, &[1.0, 1.5, 2.0, 2.5], &shares_dir, 9, 2).unwrap();
        assert!(out.contains("straggler mode"), "{out}");
        assert!(shares_dir.join("straggler-design.bin").exists());
        let x_path = dir.join("x.csv");
        std::fs::write(
            &x_path, "1
1
",
        )
        .unwrap();
        let y_path = dir.join("y.csv");
        let out = query(&shares_dir, &x_path, &y_path, None).unwrap();
        assert!(out.contains("straggler mode"), "{out}");
        let y = csv::read_vector_fp61(&y_path).unwrap();
        assert_eq!(
            y.as_slice().iter().map(|v| v.residue()).collect::<Vec<_>>(),
            vec![3, 7, 11, 15]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn straggler_and_private_audits_pass() {
        let dir = temp_dir("audit_modes");
        let data_path = dir.join("a.csv");
        std::fs::write(
            &data_path,
            "1,2
3,4
5,6
7,8
",
        )
        .unwrap();

        let sdir = dir.join("straggler");
        deploy(&data_path, &[1.0, 1.5, 2.0, 2.5], &sdir, 9, 2).unwrap();
        let (report, secure) = audit(&sdir, 1, 1).unwrap();
        assert!(secure, "{report}");
        assert!(report.contains("straggler mode"));

        let pdir = dir.join("private");
        deploy_private(&data_path, &pdir, 11, 2, 2).unwrap();
        let (report, secure) = audit(&pdir, 1, 2).unwrap();
        assert!(secure, "{report}");
        assert!(report.contains("2-private mode"));
        assert!(report.contains("coalition"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn private_deploy_query_roundtrip() {
        let dir = temp_dir("tprivate");
        let data_path = dir.join("a.csv");
        std::fs::write(
            &data_path,
            "1,2
3,4
5,6
7,8
",
        )
        .unwrap();
        let shares_dir = dir.join("shares");
        let out = deploy_private(&data_path, &shares_dir, 17, 2, 2).unwrap();
        assert!(out.contains("2-privately"), "{out}");
        let x_path = dir.join("x.csv");
        std::fs::write(
            &x_path, "1
1
",
        )
        .unwrap();
        let y_path = dir.join("y.csv");
        let out = query(&shares_dir, &x_path, &y_path, None).unwrap();
        assert!(out.contains("2-private mode"), "{out}");
        let y = csv::read_vector_fp61(&y_path).unwrap();
        assert_eq!(
            y.as_slice().iter().map(|v| v.residue()).collect::<Vec<_>>(),
            vec![3, 7, 11, 15]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_matches_direct_computation() {
        let dir = temp_dir("direct");
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::<Fp61>::random(6, 4, &mut rng);
        // Serialize A to CSV through the writer.
        let data_path = dir.join("a.csv");
        csv::write_matrix_fp61(&data_path, &a).unwrap();
        let shares_dir = dir.join("shares");
        deploy(&data_path, &[1.0, 1.2, 1.4, 1.6], &shares_dir, 13, 0).unwrap();
        let x = scec_linalg::Vector::<Fp61>::random(4, &mut rng);
        let x_path = dir.join("x.csv");
        csv::write_vector_fp61(&x_path, &x).unwrap();
        let y_path = dir.join("y.csv");
        query(&shares_dir, &x_path, &y_path, None).unwrap();
        let y = csv::read_vector_fp61(&y_path).unwrap();
        assert_eq!(y, a.matvec(&x).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_drill_quiet_fleet_is_clean() {
        let out = chaos(5, 3, 0.0, 17, Verbosity::Verbose, None).unwrap();
        assert!(out.contains("(no faults injected)"), "{out}");
        assert!(out.contains("query  3: ok"), "{out}");
        assert!(out.contains("repairs = 0"), "{out}");
    }

    #[test]
    fn dst_sweep_and_explorer_are_clean() {
        let mut options = DstOptions::sweep(5, 0);
        options.explore = true;
        let (out, clean) = dst(&options).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("dst sweep: 5 runs"), "{out}");
        assert!(out.contains("truncated = false"), "{out}");
    }

    #[test]
    fn dst_pinned_seed_runs_one_replay() {
        let mut options = DstOptions::sweep(50, 0);
        options.pinned = Some(3);
        let (out, clean) = dst(&options).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("dst sweep: 1 runs"), "{out}");
        assert!(out.contains("seed pinned to 3"), "{out}");
    }

    #[test]
    fn dst_lists_the_scenario_catalog() {
        let options = DstOptions {
            list_scenarios: true,
            ..DstOptions::default()
        };
        let (out, clean) = dst(&options).unwrap();
        assert!(clean, "{out}");
        for s in scec_dst::catalog() {
            assert!(out.contains(s.name), "missing {}: {out}", s.name);
        }
    }

    #[test]
    fn dst_scenario_smoke_runs_clean_at_small_scale() {
        let mut options = DstOptions::sweep(2, 0);
        options.scenario = Some("diurnal".into());
        options.devices = Some(14);
        options.queries = Some(24);
        let (out, clean) = dst(&options).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("dst scenario \"diurnal\""), "{out}");
    }

    #[test]
    fn dst_rejects_unknown_scenarios_with_the_catalog() {
        let mut options = DstOptions::sweep(1, 0);
        options.scenario = Some("nope".into());
        let err = dst(&options).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("unknown scenario"), "{msg}");
        assert!(msg.contains("diurnal"), "{msg}");
    }

    #[test]
    fn chaos_drill_survives_injected_faults() {
        // Seeded run with faults: all answers must still verify (the
        // command errors on any wrong answer) and the report must carry
        // the fault roster and health table.
        let out = chaos(7, 6, 0.6, 4, Verbosity::Verbose, None).unwrap();
        assert!(out.contains("device"), "{out}");
        assert!(out.contains("health:"), "{out}");
        assert!(!out.contains("BAD"), "{out}");
    }

    #[test]
    fn chaos_normal_verbosity_keeps_per_query_lines_out() {
        let out = chaos(5, 3, 0.0, 17, Verbosity::Normal, None).unwrap();
        assert!(!out.contains("query  1:"), "{out}");
        assert!(out.contains("events: "), "{out}");
        assert!(out.contains("stats: queries = 3"), "{out}");
    }

    // The snapshot-content tests assert recorded telemetry; with the
    // feature off every recording call is a no-op and the snapshot is
    // (correctly) empty, so they only run feature-on.
    #[cfg(feature = "telemetry")]
    #[test]
    fn chaos_metrics_out_writes_acceptance_snapshot() {
        // The ISSUE 5 acceptance check: the snapshot must carry
        // per-device predicted vs observed cost, lifecycle events, and
        // pipeline window statistics.
        let dir = temp_dir("chaos-metrics");
        let path = dir.join("m.json");
        // Same fleet/seed as `chaos_drill_survives_injected_faults`, so
        // faults (and therefore lifecycle events) are known to occur.
        let out = chaos(7, 6, 0.6, 4, Verbosity::Normal, Some(&path)).unwrap();
        assert!(out.contains("telemetry snapshot written"), "{out}");
        let snap = std::fs::read_to_string(&path).unwrap();
        assert!(snap.contains("\"schema\": \"scec-telemetry-v1\""), "{snap}");
        assert!(snap.contains("\"predicted\""), "{snap}");
        assert!(snap.contains("\"observed\""), "{snap}");
        assert!(snap.contains("\"device\""), "{snap}");
        assert!(snap.contains("supervisor."), "{snap}");
        assert!(snap.contains("scec_pipeline_window_occupancy"), "{snap}");
        assert!(snap.contains("scec_pipeline_in_flight"), "{snap}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                snap.matches(open).count(),
                snap.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn metrics_command_renders_both_formats() {
        let prom = metrics(4, 3, 23, false).unwrap();
        assert!(prom.contains("# TYPE scec_queries_total counter"), "{prom}");
        assert!(prom.contains("scec_query_latency_seconds"), "{prom}");
        let json = metrics(4, 3, 23, true).unwrap();
        assert!(json.contains("\"schema\": \"scec-telemetry-v1\""), "{json}");
        assert!(json.contains("\"events\""), "{json}");
        assert!(json.contains("\"costs\""), "{json}");
        assert!(json.contains("span.device_compute"), "{json}");
    }

    #[test]
    fn query_metrics_out_reports_per_device_costs() {
        let dir = temp_dir("query-metrics");
        let mut rng = StdRng::seed_from_u64(29);
        let a = Matrix::<Fp61>::random(6, 4, &mut rng);
        let data_path = dir.join("a.csv");
        csv::write_matrix_fp61(&data_path, &a).unwrap();
        let shares_dir = dir.join("shares");
        deploy(&data_path, &[1.0, 1.2, 1.4, 1.6], &shares_dir, 13, 0).unwrap();
        let x = scec_linalg::Vector::<Fp61>::random(4, &mut rng);
        let x_path = dir.join("x.csv");
        csv::write_vector_fp61(&x_path, &x).unwrap();
        let y_path = dir.join("y.csv");
        let m_path = dir.join("m.json");
        query(&shares_dir, &x_path, &y_path, Some(&m_path)).unwrap();
        assert_eq!(
            csv::read_vector_fp61(&y_path).unwrap(),
            a.matvec(&x).unwrap()
        );
        let snap = std::fs::read_to_string(&m_path).unwrap();
        assert!(snap.contains("\"predicted\""), "{snap}");
        assert!(snap.contains("span.decode"), "{snap}");
        assert!(snap.contains("span.device_compute"), "{snap}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_drives_an_in_process_serving_tier() {
        let dir = temp_dir("load");
        let metrics = dir.join("load.json");
        let options = LoadOptions {
            tenants: 3,
            queries: 12,
            panel: 4,
            window: 2,
            seed: 23,
            metrics_out: Some(metrics.clone()),
            ..LoadOptions::default()
        };
        let out = load(&options).unwrap();
        assert!(out.contains("serving tier: 3 tenants"), "{out}");
        assert!(out.contains("peak in-flight"), "{out}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"peak_in_flight\""), "{json}");
        assert!(json.contains("\"tenants\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_adaptive_mode_reports_reallocations() {
        // A loopback tier is healthy, so adaptive mode must hold every
        // tenant's original plan — the report's reallocation counter
        // exists and reads zero.
        let options = LoadOptions {
            tenants: 2,
            queries: 8,
            panel: 2,
            window: 2,
            seed: 29,
            adaptive: true,
            ..LoadOptions::default()
        };
        let out = load(&options).unwrap();
        assert!(out.contains("reallocations   = 0"), "{out}");
    }

    #[test]
    fn dst_speed_drift_scenario_runs_clean_and_reallocates() {
        let mut options = DstOptions::sweep(2, 0);
        options.scenario = Some("speed-drift".into());
        options.devices = Some(7);
        options.queries = Some(16);
        let (out, clean) = dst(&options).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("dst scenario \"speed-drift\""), "{out}");
        // Both seeds drift past the trigger, so the sweep line shows a
        // nonzero reallocation count.
        assert!(!out.contains(" 0 reallocations"), "{out}");
    }
}
