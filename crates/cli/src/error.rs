//! Error type for the CLI.

use std::fmt;

/// A specialized result type for CLI operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by CLI commands.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Bad command-line usage (unknown flag, missing value, bad number).
    Usage(String),
    /// A CSV cell could not be parsed, or rows were ragged.
    Csv {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// File-system failure.
    Io(std::io::Error),
    /// Wire decoding failed (corrupt or foreign share file).
    Wire(scec_wire::Error),
    /// A domain-layer failure (allocation, coding, framework).
    Domain(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(msg) => write!(f, "usage error: {msg}"),
            Error::Csv { line, reason } => write!(f, "CSV error at line {line}: {reason}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Wire(e) => write!(f, "share file error: {e}"),
            Error::Domain(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<scec_wire::Error> for Error {
    fn from(e: scec_wire::Error) -> Self {
        Error::Wire(e)
    }
}

impl From<scec_core::Error> for Error {
    fn from(e: scec_core::Error) -> Self {
        Error::Domain(e.to_string())
    }
}

impl From<scec_coding::Error> for Error {
    fn from(e: scec_coding::Error) -> Self {
        Error::Domain(e.to_string())
    }
}

impl From<scec_allocation::Error> for Error {
    fn from(e: scec_allocation::Error) -> Self {
        Error::Domain(e.to_string())
    }
}

impl From<scec_runtime::Error> for Error {
    fn from(e: scec_runtime::Error) -> Self {
        Error::Domain(e.to_string())
    }
}

impl From<scec_serve::Error> for Error {
    fn from(e: scec_serve::Error) -> Self {
        Error::Domain(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Usage("x".into()).to_string().contains("usage"));
        assert!(Error::Csv {
            line: 3,
            reason: "bad".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(Error::from(scec_wire::Error::BadMagic)
            .to_string()
            .contains("share file"));
        assert!(!Error::from(scec_core::Error::EmptyData)
            .to_string()
            .is_empty());
    }
}
