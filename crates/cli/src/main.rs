//! The `scec` binary: argument parsing over [`scec_cli::commands`].

use std::path::PathBuf;
use std::process::ExitCode;

use scec_cli::commands;
use scec_cli::csv::parse_costs;
use scec_cli::Error;

const USAGE: &str = "\
scec — secure coded edge computing

USAGE:
  scec plan   --m <ROWS> --costs <C1,C2,...>
  scec deploy --data <A.csv> --costs <C1,C2,...> --out <DIR> [--seed N] [--redundancy S]
  scec deploy-private --data <A.csv> --out <DIR> --threshold T --load-cap V [--seed N]
  scec query  --shares <DIR> --input <x.csv> --output <y.csv> [--metrics-out PATH]
  scec audit  --shares <DIR> [--seed N] [--coalitions T]
  scec chaos  [--devices N] [--queries Q] [--intensity F] [--seed N]
              [--verbose true] [--metrics-out PATH]
  scec dst    [--seeds N] [--seed N] [--explore true] [--failure-out PATH]
              [--metrics-out PATH] [--trace-out PATH] [--scenario NAME]
              [--devices N] [--queries Q] [--list-scenarios true]
  scec metrics [--devices N] [--queries Q] [--seed N] [--format prometheus|json]
  scec bench  [--out DIR] [--iters N] [--index N] [--quick true]
  scec serve  [--addr HOST:PORT] [--max-tenants N] [--once true]
              [--obs-addr HOST:PORT]
  scec load   [--addr HOST:PORT] [--tenants N] [--queries Q] [--panel W]
              [--window D] [--cap N] [--seed N] [--adaptive true]
              [--metrics-out PATH] [--obs-addr HOST:PORT]
              [--obs-linger SECS] [--trace-out PATH]

`scec serve` hosts a device fleet over TCP; `scec load` drives a
sharded multi-tenant query load against it (spawning an in-process
loopback server when --addr is omitted) and exits non-zero unless
every tenant's results match its own A·x. `--adaptive true` lets each
tenant re-plan over drift-scaled costs at a mid-stream checkpoint when
its cost ledger diverges from the MCSCEC prediction.
`--obs-addr` mounts a live observability plane on a second listener:
GET /metrics (Prometheus text), /trace (Chrome trace-event JSON), and
/slo (per-tenant burn rates). On `scec load` it also turns on
distributed tracing, so every query carries a wire-propagated trace
context and device compute spans stitch under the Router's dispatch
spans; `--obs-linger SECS` keeps the listener up after the run, and
`--trace-out PATH` writes the stitched Chrome trace without any
listener (open it in chrome://tracing or Perfetto).
`scec dst` honors SCEC_DST_SEED to replay a single seeded schedule.
`scec dst --scenario NAME` sweeps a named adversarial campaign at fleet
scale (`--list-scenarios true` prints the catalog).
`--metrics-out PATH` writes a scec-telemetry-v1 JSON snapshot: metrics,
query spans and lifecycle events, per-device predicted vs observed cost.

Data matrices and vectors are CSV files of integers in GF(2^61 - 1).
Share files use the framed scec-wire binary format.";

struct Args {
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, Error> {
        let mut flags = std::collections::HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(Error::Usage(format!("unexpected argument {flag:?}")));
            };
            let value = it
                .next()
                .ok_or_else(|| Error::Usage(format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Result<&str, Error> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| Error::Usage(format!("missing required --{name}")))
    }

    fn get_usize(&self, name: &str) -> Result<usize, Error> {
        self.get(name)?
            .parse()
            .map_err(|e| Error::Usage(format!("bad --{name}: {e}")))
    }

    fn seed(&self) -> Result<u64, Error> {
        match self.flags.get("seed") {
            None => Ok(2019),
            Some(v) => v
                .parse()
                .map_err(|e| Error::Usage(format!("bad --seed: {e}"))),
        }
    }
}

fn run() -> Result<(), Error> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return Err(Error::Usage("no command given".into()));
    };
    let args = Args::parse(rest)?;
    match command.as_str() {
        "plan" => {
            let m = args.get_usize("m")?;
            let costs = parse_costs(args.get("costs")?)?;
            print!("{}", commands::plan(m, &costs)?);
        }
        "deploy" => {
            let data = PathBuf::from(args.get("data")?);
            let costs = parse_costs(args.get("costs")?)?;
            let out = PathBuf::from(args.get("out")?);
            let redundancy = match args.flags.get("redundancy") {
                None => 0,
                Some(v) => v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --redundancy: {e}")))?,
            };
            print!(
                "{}",
                commands::deploy(&data, &costs, &out, args.seed()?, redundancy)?
            );
        }
        "deploy-private" => {
            let data = PathBuf::from(args.get("data")?);
            let out = PathBuf::from(args.get("out")?);
            let threshold = args.get_usize("threshold")?;
            let load_cap = args.get_usize("load-cap")?;
            print!(
                "{}",
                commands::deploy_private(&data, &out, args.seed()?, threshold, load_cap)?
            );
        }
        "query" => {
            let shares = PathBuf::from(args.get("shares")?);
            let input = PathBuf::from(args.get("input")?);
            let output = PathBuf::from(args.get("output")?);
            let metrics_out = args.flags.get("metrics-out").map(PathBuf::from);
            print!(
                "{}",
                commands::query(&shares, &input, &output, metrics_out.as_deref())?
            );
        }
        "audit" => {
            let shares = PathBuf::from(args.get("shares")?);
            let coalitions = match args.flags.get("coalitions") {
                None => 1,
                Some(v) => v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --coalitions: {e}")))?,
            };
            let (report, secure) = commands::audit(&shares, args.seed()?, coalitions)?;
            print!("{report}");
            if !secure {
                return Err(Error::Domain("audit found an insecure share".into()));
            }
        }
        "chaos" => {
            let devices = match args.flags.get("devices") {
                None => 6,
                Some(_) => args.get_usize("devices")?,
            };
            let queries = match args.flags.get("queries") {
                None => 8,
                Some(_) => args.get_usize("queries")?,
            };
            let intensity = match args.flags.get("intensity") {
                None => 0.4,
                Some(v) => v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --intensity: {e}")))?,
            };
            let verbose: bool = match args.flags.get("verbose") {
                None => false,
                Some(v) => v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --verbose: {e}")))?,
            };
            let verbosity = if verbose {
                scec_runtime::Verbosity::Verbose
            } else {
                scec_runtime::Verbosity::Normal
            };
            let metrics_out = args.flags.get("metrics-out").map(PathBuf::from);
            print!(
                "{}",
                commands::chaos(
                    devices,
                    queries,
                    intensity,
                    args.seed()?,
                    verbosity,
                    metrics_out.as_deref()
                )?
            );
        }
        "dst" => {
            let mut options = commands::DstOptions::sweep(
                match args.flags.get("seeds") {
                    None => 50,
                    Some(_) => args.get_usize("seeds")?,
                },
                args.seed()?,
            );
            options.pinned = scec_dst::seed_from_env();
            options.explore = match args.flags.get("explore") {
                None => false,
                Some(v) => v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --explore: {e}")))?,
            };
            options.scenario = args.flags.get("scenario").cloned();
            if args.flags.contains_key("devices") {
                options.devices = Some(args.get_usize("devices")?);
            }
            if args.flags.contains_key("queries") {
                options.queries = Some(args.get_usize("queries")?);
            }
            options.list_scenarios = match args.flags.get("list-scenarios") {
                None => false,
                Some(v) => v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --list-scenarios: {e}")))?,
            };
            options.failure_out = args.flags.get("failure-out").map(PathBuf::from);
            options.metrics_out = args.flags.get("metrics-out").map(PathBuf::from);
            options.trace_out = args.flags.get("trace-out").map(PathBuf::from);
            let (report, clean) = commands::dst(&options)?;
            print!("{report}");
            if !clean {
                return Err(Error::Domain("dst found an oracle violation".into()));
            }
        }
        "metrics" => {
            let devices = match args.flags.get("devices") {
                None => 5,
                Some(_) => args.get_usize("devices")?,
            };
            let queries = match args.flags.get("queries") {
                None => 8,
                Some(_) => args.get_usize("queries")?,
            };
            let json = match args.flags.get("format") {
                None => false,
                Some(v) if v == "prometheus" => false,
                Some(v) if v == "json" => true,
                Some(v) => {
                    return Err(Error::Usage(format!(
                        "bad --format {v:?}: expected prometheus or json"
                    )))
                }
            };
            print!(
                "{}",
                commands::metrics(devices, queries, args.seed()?, json)?
            );
        }
        "serve" => {
            let options = commands::ServeOptions {
                addr: args
                    .flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:4070".to_string()),
                max_tenants: match args.flags.get("max-tenants") {
                    None => u64::MAX,
                    Some(v) => v
                        .parse()
                        .map_err(|e| Error::Usage(format!("bad --max-tenants: {e}")))?,
                },
                once: match args.flags.get("once") {
                    None => false,
                    Some(v) => v
                        .parse()
                        .map_err(|e| Error::Usage(format!("bad --once: {e}")))?,
                },
                obs_addr: args.flags.get("obs-addr").cloned(),
            };
            print!("{}", commands::serve(&options)?);
        }
        "load" => {
            let mut options = commands::LoadOptions {
                seed: args.seed()?,
                ..commands::LoadOptions::default()
            };
            options.addr = args.flags.get("addr").cloned();
            if args.flags.contains_key("tenants") {
                options.tenants = args.get_usize("tenants")?;
            }
            if args.flags.contains_key("queries") {
                options.queries = args.get_usize("queries")?;
            }
            if args.flags.contains_key("panel") {
                options.panel = args.get_usize("panel")?;
            }
            if args.flags.contains_key("window") {
                options.window = args.get_usize("window")?;
            }
            if args.flags.contains_key("cap") {
                options.cap = args.get_usize("cap")?;
            }
            if let Some(v) = args.flags.get("adaptive") {
                options.adaptive = v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --adaptive: {e}")))?;
            }
            options.metrics_out = args.flags.get("metrics-out").map(PathBuf::from);
            options.obs_addr = args.flags.get("obs-addr").cloned();
            if let Some(v) = args.flags.get("obs-linger") {
                options.obs_linger_s = v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --obs-linger: {e}")))?;
            }
            options.trace_out = args.flags.get("trace-out").map(PathBuf::from);
            print!("{}", commands::load(&options)?);
        }
        "bench" => {
            let mut opts = scec_cli::bench::BenchOptions::default();
            if let Some(dir) = args.flags.get("out") {
                opts.out_dir = PathBuf::from(dir);
            }
            if args.flags.contains_key("iters") {
                opts.iters = args.get_usize("iters")?;
            }
            if args.flags.contains_key("index") {
                opts.index = Some(args.get_usize("index")?);
            }
            if let Some(v) = args.flags.get("quick") {
                opts.quick = v
                    .parse()
                    .map_err(|e| Error::Usage(format!("bad --quick: {e}")))?;
            }
            print!("{}", scec_cli::bench::run(&opts)?);
        }
        other => {
            return Err(Error::Usage(format!("unknown command {other:?}")));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
