//! End-to-end pipeline benches: allocation → distribution → query →
//! recovery, plus the event-simulated completion time (ablation A3) and a
//! secure-vs-local comparison that grounds the paper's "coding beats
//! homomorphic encryption" motivation (the secure query should cost a
//! small constant factor over the plain local matvec, not the ~10³×
//! reported for HE).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use scec_allocation::EdgeFleet;
use scec_coding::CodeDesign;
use scec_core::{AllocationStrategy, ScecSystem};
use scec_linalg::{Fp61, Matrix, Vector};
use scec_sim::event::{DeviceProfile, NetworkModel, ProtocolSimulator};

fn fleet(k: usize) -> EdgeFleet {
    let mut rng = StdRng::seed_from_u64(5);
    EdgeFleet::from_unit_costs((0..k).map(|_| rng.gen_range(1.0..5.0)).collect()).unwrap()
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for &(m, l) in &[(100usize, 128usize), (500, 256)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("build_and_distribute", format!("m{m}_l{l}")),
            &a,
            |b, a| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    let sys = ScecSystem::build(
                        a.clone(),
                        fleet(25),
                        AllocationStrategy::Mcscec,
                        &mut rng,
                    )
                    .unwrap();
                    sys.distribute(&mut rng).unwrap()
                })
            },
        );
        let sys =
            ScecSystem::build(a.clone(), fleet(25), AllocationStrategy::Mcscec, &mut rng).unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let x = Vector::<Fp61>::random(l, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("secure_query", format!("m{m}_l{l}")),
            &deployment,
            |b, d| b.iter(|| d.query(black_box(&x)).unwrap()),
        );
        // The plain local matvec, for the overhead-factor comparison.
        group.bench_with_input(
            BenchmarkId::new("local_matvec", format!("m{m}_l{l}")),
            &a,
            |b, a| b.iter(|| a.matvec(black_box(&x)).unwrap()),
        );
    }
    group.finish();
}

fn bench_completion_time_sim(c: &mut Criterion) {
    // A3: the event simulator itself (per simulated query), across r.
    let mut group = c.benchmark_group("completion_time");
    let m = 5000;
    for &r in &[250usize, 1000, 5000] {
        let design = CodeDesign::new(m, r).unwrap();
        let model =
            NetworkModel::homogeneous(design.device_count(), DeviceProfile::default_edge(), 1e-9)
                .unwrap();
        let sim = ProtocolSimulator::new(model);
        group.bench_with_input(BenchmarkId::from_parameter(r), &sim, |b, sim| {
            b.iter(|| sim.simulate(black_box(&design), 256).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_completion_time_sim);
criterion_main!(benches);
