//! Benches for the post-paper extensions: straggler-tolerant decoding
//! (A5), the price of collusion resistance (A6), and the threaded
//! runtime's end-to-end query latency.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use scec_allocation::EdgeFleet;
use scec_coding::{CodeDesign, StragglerCode, TPrivateCode, TaggedResponse};
use scec_core::{AllocationStrategy, ScecSystem};
use scec_linalg::{Fp61, Matrix, Vector};
use scec_runtime::LocalCluster;

fn bench_straggler_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("straggler_decode");
    group.sample_size(20);
    for &m in &[50usize, 100] {
        let r = m / 4;
        let s = r;
        let mut rng = StdRng::seed_from_u64(3);
        let base = CodeDesign::new(m, r).unwrap();
        let code = StragglerCode::<Fp61>::new(base, s, &mut rng).unwrap();
        let a = Matrix::<Fp61>::random(m, 16, &mut rng);
        let x = Vector::<Fp61>::random(16, &mut rng);
        let store = code.encode(&a, &mut rng).unwrap();
        let responses: Vec<TaggedResponse<Fp61>> = store
            .shares()
            .iter()
            .flat_map(|sh| sh.compute(&x).unwrap())
            .collect();
        // Fast path: all base rows present.
        group.bench_with_input(BenchmarkId::new("all_rows_fast_path", m), &m, |b, _| {
            b.iter(|| code.decode(black_box(&responses)).unwrap())
        });
        // General path: drop the first s responses (base rows missing).
        let partial = &responses[s..];
        group.bench_with_input(BenchmarkId::new("quorum_gaussian_path", m), &m, |b, _| {
            b.iter(|| code.decode(black_box(partial)).unwrap())
        });
    }
    group.finish();
}

fn bench_collusion_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("collusion_ablation");
    group.sample_size(20);
    let m = 100;
    let v = 10;
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::<Fp61>::random(m, 16, &mut rng);
    let x = Vector::<Fp61>::random(16, &mut rng);
    for &t in &[1usize, 2, 4] {
        let code = TPrivateCode::<Fp61>::new(m, t, v, &mut rng).unwrap();
        let store = code.encode(&a, &mut rng).unwrap();
        let mut btx = Vec::new();
        for share in store.shares() {
            btx.extend(share.compute(&x).unwrap().into_vec());
        }
        let btx = Vector::from_vec(btx);
        group.bench_with_input(BenchmarkId::new("t_private_decode", t), &t, |b, _| {
            b.iter(|| code.decode(black_box(&btx)).unwrap())
        });
    }
    // The t = 1 structured design's O(m) decoder, as the baseline.
    let design = CodeDesign::new(m, v).unwrap();
    let store = scec_coding::Encoder::new(design.clone())
        .encode(&a, &mut rng)
        .unwrap();
    let partials: Vec<Vector<Fp61>> = store
        .shares()
        .iter()
        .map(|s| s.compute(&x).unwrap())
        .collect();
    let btx = scec_coding::decode::stack_partials(&partials);
    group.bench_function("structured_fast_decode_baseline", |b| {
        b.iter(|| scec_coding::decode::decode_fast(black_box(&design), black_box(&btx)).unwrap())
    });
    group.finish();
}

fn bench_runtime_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_query");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    for &(m, l) in &[(50usize, 64usize), (200, 128)] {
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
        let system = ScecSystem::build(a, fleet, AllocationStrategy::Mcscec, &mut rng).unwrap();
        let cluster = LocalCluster::launch(&system, &mut rng).unwrap();
        let x = Vector::<Fp61>::random(l, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("threaded_query", format!("m{m}_l{l}")),
            &cluster,
            |b, cl| b.iter(|| cl.query(black_box(&x)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_straggler_decode,
    bench_collusion_decode,
    bench_runtime_query
);
criterion_main!(benches);
