//! Wire-codec throughput: serialize/deserialize coded shares at the
//! sizes a cloud would actually ship.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use scec_coding::{CodeDesign, DeviceShare, Encoder};
use scec_linalg::{Fp61, Matrix};
use scec_wire::{decode_framed, encode_framed, tag, WireEncode};

fn bench_share_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(20);
    for &(m, l) in &[(100usize, 128usize), (500, 256)] {
        let r = m / 4;
        let mut rng = StdRng::seed_from_u64(5);
        let design = CodeDesign::new(m, r).unwrap();
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let store = Encoder::new(design).encode(&a, &mut rng).unwrap();
        let share = store.share(2).unwrap().clone();
        let bytes = encode_framed(&share, tag::DEVICE_SHARE);
        group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("encode_share", format!("m{m}_l{l}")),
            &share,
            |b, s| b.iter(|| encode_framed(black_box(s), tag::DEVICE_SHARE)),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_share", format!("m{m}_l{l}")),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    decode_framed::<DeviceShare<Fp61>>(black_box(bytes), tag::DEVICE_SHARE).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_matrix_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_matrix");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    for &n in &[64usize, 256] {
        let m = Matrix::<Fp61>::random(n, n, &mut rng);
        let bytes = m.to_bytes();
        group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &m, |b, m| {
            b.iter(|| m.to_bytes())
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            use scec_wire::WireDecode;
            b.iter(|| Matrix::<Fp61>::from_bytes(black_box(bytes)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_share_codec, bench_matrix_codec);
criterion_main!(benches);
