//! Ablations A1 and A4: coding-layer throughput.
//!
//! * A1 — the headline decoding claim: the structured code decodes with
//!   `m` subtractions while a generic full-rank code needs Gaussian
//!   elimination. `decode_fast` vs `decode_general` quantifies the gap.
//! * A4 — field choice: GF(2⁶¹−1) (exact ITS) vs `f64` (numerical mode)
//!   for encoding and the device-side matvec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use scec_coding::{decode, verify, CodeDesign, Encoder};
use scec_linalg::{Fp61, Matrix, Scalar, Vector};

fn setup<F: Scalar>(m: usize, r: usize, l: usize) -> (CodeDesign, Matrix<F>, Vector<F>, Vector<F>) {
    let mut rng = StdRng::seed_from_u64(7);
    let design = CodeDesign::new(m, r).unwrap();
    let a = Matrix::<F>::random(m, l, &mut rng);
    let x = Vector::<F>::random(l, &mut rng);
    let store = Encoder::new(design.clone()).encode(&a, &mut rng).unwrap();
    let partials: Vec<Vector<F>> = store
        .shares()
        .iter()
        .map(|s| s.compute(&x).unwrap())
        .collect();
    (design, a, x, decode::stack_partials(&partials))
}

fn bench_decode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_ablation");
    group.sample_size(20);
    for &m in &[50usize, 100, 200] {
        let r = m / 4;
        let (design, _a, _x, btx) = setup::<Fp61>(m, r, 32);
        group.bench_with_input(BenchmarkId::new("fast_m_subtractions", m), &m, |b, _| {
            b.iter(|| decode::decode_fast(black_box(&design), black_box(&btx)).unwrap())
        });
        let bmat = design.encoding_matrix::<Fp61>();
        group.bench_with_input(BenchmarkId::new("general_gaussian", m), &m, |b, _| {
            b.iter(|| decode::decode_general(black_box(&design), &bmat, black_box(&btx)).unwrap())
        });
    }
    group.finish();
}

fn bench_encode_field_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_ablation");
    group.sample_size(20);
    for &(m, l) in &[(100usize, 128usize), (500, 128), (100, 1024)] {
        let r = m / 4;
        let mut rng = StdRng::seed_from_u64(9);
        let design = CodeDesign::new(m, r).unwrap();
        let a_fp = Matrix::<Fp61>::random(m, l, &mut rng);
        let a_f64 = Matrix::<f64>::random(m, l, &mut rng);
        let enc = Encoder::new(design.clone());
        group.bench_with_input(
            BenchmarkId::new("encode_fp61", format!("m{m}_l{l}")),
            &a_fp,
            |b, a| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| enc.encode(black_box(a), &mut rng).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encode_f64", format!("m{m}_l{l}")),
            &a_f64,
            |b, a| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| enc.encode(black_box(a), &mut rng).unwrap())
            },
        );
        // Device-side matvec on the largest share.
        let x_fp = Vector::<Fp61>::random(l, &mut rng);
        let store = enc.encode(&a_fp, &mut rng).unwrap();
        let share = store.share(2).unwrap().clone();
        group.bench_with_input(
            BenchmarkId::new("device_matvec_fp61", format!("m{m}_l{l}")),
            &share,
            |b, s| b.iter(|| s.compute(black_box(&x_fp)).unwrap()),
        );
    }
    group.finish();
}

fn bench_verify_and_densify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    for &m in &[20usize, 50] {
        let design = CodeDesign::new(m, m / 4).unwrap();
        let b_mat = design.encoding_matrix::<Fp61>();
        group.bench_with_input(BenchmarkId::new("verify_structured", m), &m, |b, _| {
            b.iter(|| verify::verify(black_box(&design), black_box(&b_mat)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("densify", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| verify::densify::<Fp61, _>(black_box(&design), &mut rng))
        });
    }
    group.finish();
}

fn bench_sparse_vs_dense_b(c: &mut Criterion) {
    // Eq. (8)'s B has 2m + r non-zeros: multiplying through the sparse
    // form is O(m) instead of O(m^2).
    let mut group = c.benchmark_group("sparse_encoding_matrix");
    group.sample_size(10);
    for &m in &[200usize, 500] {
        let r = m / 4;
        let mut rng = StdRng::seed_from_u64(11);
        let design = CodeDesign::new(m, r).unwrap();
        let t = Matrix::<Fp61>::random(m + r, 8, &mut rng);
        let dense = design.encoding_matrix::<Fp61>();
        let sparse = design.encoding_matrix_sparse::<Fp61>();
        group.bench_with_input(BenchmarkId::new("dense_matmul", m), &m, |b, _| {
            b.iter(|| dense.matmul(black_box(&t)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sparse_matmul", m), &m, |b, _| {
            b.iter(|| sparse.matmul(black_box(&t)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_ablation,
    bench_encode_field_ablation,
    bench_verify_and_densify,
    bench_sparse_vs_dense_b
);
criterion_main!(benches);
