//! Kernel ablation: naive vs lazy-reduction vs lazy + parallel.
//!
//! Isolates the two wins layered into `scec-linalg`:
//!
//! * **lazy reduction** — `kernels::matmul_naive` reduces after every
//!   product; `matmul_serial` batches up to `LAZY_BLOCK` = 63 products
//!   per reduction of the u128 accumulator (GF(2⁶¹−1) headroom);
//! * **row banding** — `matmul` additionally spreads row bands over
//!   threads (a no-op under `--no-default-features`).
//!
//! The same split is repeated for matvec and the Gauss forward
//! elimination that dominates `rank`/`invert`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use scec_linalg::{gauss, kernels, Fp61, Matrix, Vector};

fn bench_matmul_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp61_matmul");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(31);
        let a = Matrix::<Fp61>::random(n, n, &mut rng);
        let b = Matrix::<Fp61>::random(n, n, &mut rng);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| kernels::matmul_naive(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lazy_serial", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matmul_serial(black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lazy_parallel", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_matvec_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp61_matvec");
    group.sample_size(20);
    for &n in &[256usize, 1024] {
        let mut rng = StdRng::seed_from_u64(33);
        let a = Matrix::<Fp61>::random(n, n, &mut rng);
        let x = Vector::<Fp61>::random(n, &mut rng);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| kernels::matvec_naive(black_box(&a), black_box(&x)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matvec(black_box(&x)).unwrap())
        });
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp61_transpose");
    group.sample_size(20);
    for &n in &[512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(35);
        let a = Matrix::<Fp61>::random(n, n, &mut rng);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("strided", n), &n, |bch, _| {
            bch.iter(|| kernels::transpose_naive(black_box(&a)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).transpose())
        });
    }
    group.finish();
}

/// Block-size sweep for the tiled transpose: measures
/// `kernels::transpose_blocked` across candidate tiles so
/// `kernels::TRANSPOSE_TILE` can be pinned to the empirical winner (the
/// `tile_0` row is the unblocked column-walk baseline).
fn bench_transpose_tile_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp61_transpose_tile_sweep");
    group.sample_size(20);
    for &n in &[512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(36);
        let a = Matrix::<Fp61>::random(n, n, &mut rng);
        group.throughput(Throughput::Elements((n * n) as u64));
        for &tile in &[0usize, 8, 16, 32, 64, 128] {
            group.bench_with_input(
                BenchmarkId::new(format!("tile_{tile}"), n),
                &tile,
                |bch, &tile| bch.iter(|| kernels::transpose_blocked(black_box(&a), tile)),
            );
        }
    }
    group.finish();
}

fn bench_gauss(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp61_gauss");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let mut rng = StdRng::seed_from_u64(37);
        let a = Matrix::<Fp61>::random(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("invert", n), &n, |bch, _| {
            bch.iter(|| gauss::invert(black_box(&a)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rank", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).rank())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_ablation,
    bench_matvec_ablation,
    bench_transpose,
    bench_transpose_tile_sweep,
    bench_gauss
);
criterion_main!(benches);
