//! Ablation A2: task-allocation runtime.
//!
//! The paper claims TA1 is O(k) and TA2 is O(k + m), advising the cloud
//! to pick by parameter regime. These benches measure both across the
//! (k, m) grid so the claimed scaling is visible in the report, plus the
//! `i*` search and lower-bound evaluation they build on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use scec_allocation::{bound, istar, ta, EdgeFleet};

fn fleet(k: usize, seed: u64) -> EdgeFleet {
    let mut rng = StdRng::seed_from_u64(seed);
    EdgeFleet::from_unit_costs((0..k).map(|_| rng.gen_range(1.0..5.0)).collect()).unwrap()
}

fn bench_ta1_vs_ta2(c: &mut Criterion) {
    let mut group = c.benchmark_group("ta_runtime");
    for &k in &[10usize, 100, 1000] {
        for &m in &[100usize, 5_000, 100_000] {
            let f = fleet(k, 1);
            group.bench_with_input(
                BenchmarkId::new("ta1", format!("k{k}_m{m}")),
                &(m, &f),
                |b, (m, f)| b.iter(|| ta::ta1(black_box(*m), f).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("ta2", format!("k{k}_m{m}")),
                &(m, &f),
                |b, (m, f)| b.iter(|| ta::ta2(black_box(*m), f).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_istar_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("istar_and_bound");
    for &k in &[25usize, 1000, 100_000] {
        let f = fleet(k, 2);
        group.bench_with_input(BenchmarkId::new("i_star", k), &f, |b, f| {
            b.iter(|| istar::i_star(black_box(f)))
        });
        group.bench_with_input(BenchmarkId::new("lower_bound", k), &f, |b, f| {
            b.iter(|| bound::lower_bound(black_box(5000), f).unwrap())
        });
    }
    group.finish();
}

fn bench_fleet_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_construction");
    for &k in &[25usize, 1000, 100_000] {
        let mut rng = StdRng::seed_from_u64(3);
        let costs: Vec<f64> = (0..k).map(|_| rng.gen_range(1.0..5.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &costs, |b, costs| {
            b.iter(|| EdgeFleet::from_unit_costs(black_box(costs.clone())).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ta1_vs_ta2,
    bench_istar_and_bound,
    bench_fleet_construction
);
criterion_main!(benches);
