//! Criterion benchmark crate for the SCEC workspace (see `benches/`).
//!
//! One bench target per paper figure plus the ablations indexed in
//! `DESIGN.md`: allocation algorithm runtime (A2), coding/decoding
//! throughput (A1, A4), and the end-to-end pipeline.
