//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic laws the coding layer silently relies on:
//! field axioms for `Fp61`, rank semantics, and solve/invert roundtrips.

use proptest::prelude::*;
use scec_linalg::{gauss, span, Fp61, Matrix, Scalar, Vector};

fn fp() -> impl Strategy<Value = Fp61> {
    any::<u64>().prop_map(Fp61::new)
}

fn fp_vec(len: usize) -> impl Strategy<Value = Vec<Fp61>> {
    proptest::collection::vec(fp(), len)
}

fn fp_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Fp61>> {
    fp_vec(rows * cols).prop_map(move |data| Matrix::from_flat(rows, cols, data).unwrap())
}

proptest! {
    #[test]
    fn fp61_addition_is_commutative_associative(a in fp(), b in fp(), c in fp()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn fp61_multiplication_is_commutative_associative(a in fp(), b in fp(), c in fp()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn fp61_distributivity(a in fp(), b in fp(), c in fp()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn fp61_additive_inverse(a in fp()) {
        prop_assert_eq!(a + (-a), Fp61::new(0));
        prop_assert_eq!(Scalar::sub(a, a), Fp61::new(0));
    }

    #[test]
    fn fp61_multiplicative_inverse(a in fp()) {
        if !Scalar::is_zero(&a) {
            let inv = Scalar::inv(a).unwrap();
            prop_assert_eq!(a * inv, Fp61::new(1));
        }
    }

    #[test]
    fn fp61_identities(a in fp()) {
        prop_assert_eq!(a + Fp61::new(0), a);
        prop_assert_eq!(a * Fp61::new(1), a);
        prop_assert_eq!(a * Fp61::new(0), Fp61::new(0));
    }

    #[test]
    fn rank_is_bounded_and_transpose_invariant(m in fp_matrix(4, 6)) {
        let r = m.rank();
        prop_assert!(r <= 4);
        prop_assert_eq!(r, m.transpose().rank());
    }

    #[test]
    fn rank_of_product_at_most_min(a in fp_matrix(3, 4), b in fp_matrix(4, 5)) {
        let p = a.matmul(&b).unwrap();
        prop_assert!(p.rank() <= a.rank().min(b.rank()));
    }

    #[test]
    fn duplicating_rows_preserves_rank(m in fp_matrix(3, 5)) {
        let doubled = m.vstack(&m).unwrap();
        prop_assert_eq!(doubled.rank(), m.rank());
    }

    #[test]
    fn solve_recovers_planted_solution(a in fp_matrix(5, 5), x in fp_vec(5)) {
        let x = Vector::from_vec(x);
        let b = a.matvec(&x).unwrap();
        match gauss::solve(&a, &b) {
            Ok(got) => {
                // Any solution must reproduce b; with full rank it is x itself.
                let back = a.matvec(&got).unwrap();
                prop_assert_eq!(back, b);
                if a.rank() == 5 {
                    prop_assert_eq!(got, x);
                }
            }
            Err(_) => prop_assert!(a.rank() < 5),
        }
    }

    #[test]
    fn invert_roundtrips_when_full_rank(a in fp_matrix(4, 4)) {
        match gauss::invert(&a) {
            Ok(inv) => {
                prop_assert_eq!(a.matmul(&inv).unwrap(), Matrix::identity(4));
                prop_assert_eq!(inv.matmul(&a).unwrap(), Matrix::identity(4));
            }
            Err(_) => prop_assert!(a.rank() < 4),
        }
    }

    #[test]
    fn determinant_zero_iff_rank_deficient(a in fp_matrix(4, 4)) {
        let det = gauss::determinant(&a).unwrap();
        prop_assert_eq!(Scalar::is_zero(&det), a.rank() < 4);
    }

    #[test]
    fn span_dimension_formula_consistency(a in fp_matrix(3, 6), b in fp_matrix(3, 6)) {
        let da = span::dim(&a);
        let db = span::dim(&b);
        let ds = span::sum_dim(&a, &b);
        let di = span::intersection_dim(&a, &b);
        // Grassmann identity and bounds.
        prop_assert_eq!(da + db, ds + di);
        prop_assert!(ds <= da + db);
        prop_assert!(ds <= 6);
        prop_assert!(di <= da.min(db));
    }

    #[test]
    fn canonical_basis_is_span_invariant(m in fp_matrix(3, 5), scale in fp()) {
        // Scaling a row by a non-zero factor must not change the span.
        if Scalar::is_zero(&scale) {
            return Ok(());
        }
        let mut scaled = m.clone();
        scaled.scale_row(0, scale);
        prop_assert_eq!(span::canonical_basis(&m), span::canonical_basis(&scaled));
    }

    #[test]
    fn rref_rows_are_contained_in_original_span(m in fp_matrix(3, 5)) {
        let basis = span::canonical_basis(&m);
        for row in basis.rows_iter() {
            prop_assert!(span::contains(&m, row));
        }
    }

    #[test]
    fn matmul_is_associative(
        a in fp_matrix(2, 3),
        b in fp_matrix(3, 4),
        c in fp_matrix(4, 2),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn matvec_agrees_with_matmul(a in fp_matrix(3, 4), x in fp_vec(4)) {
        let x = Vector::from_vec(x);
        let via_vec = a.matvec(&x).unwrap();
        let via_mat = a.matmul(&x.clone().into_column_matrix()).unwrap();
        prop_assert_eq!(via_vec.as_slice(), via_mat.as_flat());
    }

    #[test]
    fn sparse_matches_dense_on_random_patterns(
        seed in any::<u64>(),
        rows in 1usize..8,
        cols in 1usize..8,
        density_pct in 0usize..100,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use scec_linalg::sparse::CsrMatrix;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = Matrix::<Fp61>::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_range(0..100) < density_pct {
                    dense.set(r, c, Scalar::sample(&mut rng)).unwrap();
                }
            }
        }
        let sparse = CsrMatrix::from_dense(&dense);
        prop_assert_eq!(sparse.to_dense(), dense.clone());
        let x = Vector::<Fp61>::random(cols, &mut rng);
        prop_assert_eq!(sparse.matvec(&x).unwrap(), dense.matvec(&x).unwrap());
        let rhs = Matrix::<Fp61>::random(cols, 3, &mut rng);
        prop_assert_eq!(sparse.matmul(&rhs).unwrap(), dense.matmul(&rhs).unwrap());
        prop_assert_eq!(sparse.transpose().to_dense(), dense.transpose());
    }

    #[test]
    fn lu_solve_matches_gauss_property(seed in any::<u64>(), n in 1usize..8) {
        use rand::{rngs::StdRng, SeedableRng};
        use scec_linalg::lu::Lu;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(n, n, &mut rng);
        let b = Vector::<Fp61>::random(n, &mut rng);
        match (Lu::factor(&a), gauss::solve(&a, &b)) {
            (Ok(lu), Ok(want)) => prop_assert_eq!(lu.solve(&b).unwrap(), want),
            (Err(_), Err(_)) => prop_assert!(a.rank() < n),
            (lu, gs) => {
                // One succeeded where the other failed: only legal when
                // the matrix is singular and gauss found an incidental
                // solution (consistent RHS).
                prop_assert!(a.rank() < n, "LU {:?} vs gauss {:?}", lu.is_ok(), gs.is_ok());
            }
        }
    }

    // ------------------------------------------------------------------
    // Kernel routing: the lazy-reduction / banded paths must agree with
    // the naive references — exactly over Fp61, bitwise over f64 — on
    // every shape, including empty, 1×n, n×1, and inner dimensions that
    // straddle the LAZY_BLOCK = 63 reduction boundary.
    // ------------------------------------------------------------------

    #[test]
    fn kernel_matmul_matches_naive_fp61(
        seed in any::<u64>(),
        rows in 0usize..12,
        inner in 0usize..70,
        cols in 0usize..12,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use scec_linalg::kernels;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(rows, inner, &mut rng);
        let b = Matrix::<Fp61>::random(inner, cols, &mut rng);
        let naive = kernels::matmul_naive(&a, &b).unwrap();
        prop_assert_eq!(&a.matmul(&b).unwrap(), &naive);
        prop_assert_eq!(&a.matmul_serial(&b).unwrap(), &naive);
    }

    #[test]
    fn kernel_matmul_matches_naive_f64_bitwise(
        seed in any::<u64>(),
        rows in 0usize..10,
        inner in 0usize..40,
        cols in 0usize..10,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use scec_linalg::kernels;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<f64>::random(rows, inner, &mut rng);
        let b = Matrix::<f64>::random(inner, cols, &mut rng);
        let naive = kernels::matmul_naive(&a, &b).unwrap();
        // PartialEq on f64 entries: bitwise-equal results (no NaNs here).
        prop_assert_eq!(&a.matmul(&b).unwrap(), &naive);
        prop_assert_eq!(&a.matmul_serial(&b).unwrap(), &naive);
    }

    #[test]
    fn kernel_matvec_and_dot_match_naive(
        seed in any::<u64>(),
        rows in 0usize..16,
        cols in 0usize..200,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use scec_linalg::kernels;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(rows, cols, &mut rng);
        let x = Vector::<Fp61>::random(cols, &mut rng);
        prop_assert_eq!(
            a.matvec(&x).unwrap(),
            kernels::matvec_naive(&a, &x).unwrap()
        );
        let y = Vector::<Fp61>::random(cols, &mut rng);
        prop_assert_eq!(
            x.dot(&y).unwrap(),
            kernels::dot_naive(x.as_slice(), y.as_slice())
        );
        let xf = Vector::<f64>::random(cols, &mut rng);
        let yf = Vector::<f64>::random(cols, &mut rng);
        prop_assert_eq!(
            xf.dot(&yf).unwrap(),
            kernels::dot_naive(xf.as_slice(), yf.as_slice())
        );
    }

    #[test]
    fn blocked_transpose_matches_naive(
        seed in any::<u64>(),
        rows in 1usize..70,
        cols in 1usize..70,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use scec_linalg::kernels;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Fp61>::random(rows, cols, &mut rng);
        prop_assert_eq!(m.transpose(), kernels::transpose_naive(&m));
    }

    #[test]
    fn tr_matvec_matches_transpose_then_matvec(
        seed in any::<u64>(),
        rows in 1usize..20,
        cols in 1usize..20,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(rows, cols, &mut rng);
        let u = Vector::<Fp61>::random(rows, &mut rng);
        prop_assert_eq!(
            a.tr_matvec(&u).unwrap(),
            a.transpose().matvec(&u).unwrap()
        );
    }

    #[test]
    fn f64_solve_roundtrip_is_accurate(seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<f64>::random(6, 6, &mut rng);
        let x = Vector::<f64>::random(6, &mut rng);
        let b = a.matvec(&x).unwrap();
        if let Ok(got) = gauss::solve(&a, &b) {
            for i in 0..6 {
                prop_assert!((got.at(i) - x.at(i)).abs() < 1e-5,
                    "component {} differs: {} vs {}", i, got.at(i), x.at(i));
            }
        }
    }
}
