//! Dense linear algebra over generic fields for secure coded edge computing.
//!
//! This crate is the mathematical substrate of the SCEC workspace. It
//! provides exactly the operations the MCSCEC paper's availability and
//! security conditions are stated in terms of:
//!
//! * a [`Scalar`] abstraction over field elements, with two concrete fields:
//!   IEEE-754 [`f64`] (numerical mode) and the Mersenne prime field
//!   [`Fp61`] = GF(2⁶¹ − 1) (exact, information-theoretic mode);
//! * dense row-major [`Matrix`] and [`Vector`] types with the usual
//!   arithmetic (`A·B`, `A·x`, transpose, stacking, block extraction);
//! * [Gaussian elimination](gauss) with partial pivoting: [`rank`](Matrix::rank),
//!   [`solve`](gauss::solve), [`invert`](gauss::invert), reduced row echelon form;
//! * [row-span calculus](span): dimension of the span of a set of rows, and
//!   the dimension of the *intersection* of two row spans, which is the form
//!   in which the paper states its security condition
//!   (`dim(L(B_j) ∩ L(λ̄)) = 0`).
//!
//! # Example
//!
//! ```
//! use scec_linalg::{Matrix, span};
//!
//! // The paper's security condition for a device block B_j:
//! // the span of B_j must intersect the span of λ̄ = [E_m | 0] trivially.
//! let m = 2; // data rows
//! let r = 2; // random rows
//! // B_j = [E_m | E_r] : every coded row mixes one data row with one random row.
//! let b_j = Matrix::<f64>::identity(2).hstack(&Matrix::identity(2)).unwrap();
//! let lambda = Matrix::<f64>::identity(m).hstack(&Matrix::zeros(m, r)).unwrap();
//! assert_eq!(span::intersection_dim(&b_j, &lambda), 0);
//! ```

// `deny` rather than `forbid`: the `simd` module opts back in with a
// scoped `#[allow(unsafe_code)]` for the AVX2 intrinsics (every unsafe
// block there is behind runtime CPU-feature detection); everything else
// in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod error;
pub mod fp;
pub mod fp_generic;
pub mod gauss;
pub mod kernels;
pub mod lu;
pub mod matrix;
pub mod ops;
pub mod scalar;
pub mod simd;
pub mod span;
pub mod sparse;
pub mod vector;

pub use error::{Error, Result};
pub use fp::Fp61;
pub use fp_generic::FpGeneric;
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use vector::Vector;
