//! PLU factorization: factor a square matrix once, solve many times.
//!
//! The `t`-private decoder (and any deployment answering a stream of
//! queries through the same code) repeatedly solves systems against the
//! *same* coefficient matrix. Refactoring the Gaussian elimination into a
//! reusable factorization turns each subsequent solve from O(n³) into
//! O(n²).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// A PLU factorization `P·A = L·U` with partial pivoting.
///
/// `L` (unit lower triangular) and `U` (upper triangular) are packed into
/// one matrix; `perm` records the row permutation.
///
/// # Example
///
/// ```
/// use scec_linalg::{lu::Lu, Matrix, Vector};
///
/// let a = Matrix::from_rows(vec![vec![4.0, 3.0], vec![6.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&Vector::from_vec(vec![10.0, 12.0]))?;
/// // 4x + 3y = 10, 6x + 3y = 12 → x = 1, y = 2
/// assert!((x.at(0) - 1.0).abs() < 1e-12);
/// assert!((x.at(1) - 2.0).abs() < 1e-12);
/// # Ok::<(), scec_linalg::Error>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Lu<F> {
    packed: Matrix<F>,
    perm: Vec<usize>,
    swaps_odd: bool,
}

impl<F: Scalar> std::fmt::Debug for Lu<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lu")
            .field("packed", &self.packed)
            .field("perm", &self.perm)
            .field("swaps_odd", &self.swaps_odd)
            .finish()
    }
}

impl<F: Scalar> Lu<F> {
    /// Factors a square, invertible matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square;
    /// * [`Error::Empty`] when `a` has no rows;
    /// * [`Error::Singular`] when `a` is (numerically) rank deficient.
    pub fn factor(a: &Matrix<F>) -> Result<Self> {
        let (rows, cols) = a.shape();
        if rows != cols {
            return Err(Error::NotSquare { rows, cols });
        }
        if rows == 0 {
            return Err(Error::Empty);
        }
        let n = rows;
        let mut packed = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps_odd = false;
        for k in 0..n {
            // Partial pivoting within column k.
            let mut best = k;
            let mut best_w = packed.at(k, k).pivot_weight();
            for r in (k + 1)..n {
                let w = packed.at(r, k).pivot_weight();
                if w > best_w {
                    best = r;
                    best_w = w;
                }
            }
            if best_w == 0.0 {
                return Err(Error::Singular);
            }
            if best != k {
                packed.swap_rows(k, best);
                perm.swap(k, best);
                swaps_odd = !swaps_odd;
            }
            let pivot = packed.at(k, k);
            let inv = pivot.inv().expect("non-zero pivot");
            // Copy the pivot row's trailing block once so the update can
            // run on the fused slice kernel (disjoint borrows).
            let pivot_tail: Vec<F> = packed.row(k)[k + 1..].to_vec();
            for r in (k + 1)..n {
                let factor = packed.at(r, k).mul(inv);
                packed.set(r, k, factor)?; // store L multiplier in place
                if factor.is_zero() {
                    continue;
                }
                let row = packed.row_mut(r);
                F::fused_submul(&mut row[k + 1..], factor, &pivot_tail);
            }
        }
        Ok(Lu {
            packed,
            perm,
            swaps_odd,
        })
    }

    /// The system dimension `n`.
    pub fn dim(&self) -> usize {
        self.packed.nrows()
    }

    /// Solves `A·x = b` using the stored factors (O(n²)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector<F>) -> Result<Vector<F>> {
        let n = self.dim();
        let mut scratch = vec![F::zero(); n];
        let mut x = vec![F::zero(); n];
        self.solve_into(b.as_slice(), &mut scratch, &mut x)?;
        Ok(Vector::from_vec(x))
    }

    /// Allocation-free solve for streams of right-hand sides against the
    /// same factorization: writes the solution of `A·x = b` into `out`,
    /// using `scratch` for the forward-substitution intermediate. Both
    /// working slices must have length [`dim`](Self::dim); callers keep
    /// them across queries so a sustained solve stream performs zero
    /// allocations. The substitution inner loops run on the fused
    /// [`Scalar::dot_slices`] kernel, so `Fp61` triangular solves get
    /// lazy reduction like the dense products do.
    ///
    /// # Errors
    ///
    /// * [`Error::ShapeMismatch`] when `b`, `scratch`, or `out` is not of
    ///   length `dim()`;
    /// * [`Error::Singular`] when a diagonal entry is not invertible
    ///   (impossible for a factorization produced by [`Lu::factor`]).
    pub fn solve_into(&self, b: &[F], scratch: &mut [F], out: &mut [F]) -> Result<()> {
        let n = self.dim();
        if b.len() != n || scratch.len() != n || out.len() != n {
            return Err(Error::ShapeMismatch {
                op: "lu_solve_into",
                lhs: (n, n),
                rhs: (b.len().max(scratch.len()).max(out.len()), 1),
            });
        }
        // Forward substitution on P·b with unit-diagonal L.
        for i in 0..n {
            let row = self.packed.row(i);
            let acc = F::dot_slices(&row[..i], &scratch[..i]);
            scratch[i] = b[self.perm[i]].sub(acc);
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.packed.row(i);
            let acc = F::dot_slices(&row[i + 1..], &out[i + 1..]);
            let diag = row[i];
            out[i] = scratch[i].sub(acc).div(diag).ok_or(Error::Singular)?;
        }
        Ok(())
    }

    /// Solves `A·X = B` for a whole right-hand-side panel.
    ///
    /// Allocates the working buffers once and delegates to
    /// [`Lu::solve_panel_into`]; results are bit-identical to solving
    /// column by column with [`Lu::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `b.nrows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix<F>) -> Result<Matrix<F>> {
        let n = self.dim();
        let k = b.ncols();
        let mut scratch = vec![F::zero(); (n + 1) * k];
        let mut out = Matrix::zeros(n, k);
        self.solve_panel_into(b, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Scratch length [`Lu::solve_panel_into`] requires for a panel of
    /// `width` right-hand sides: `dim` intermediate rows plus one
    /// accumulator row.
    #[inline]
    pub fn panel_scratch_len(&self, width: usize) -> usize {
        (self.dim() + 1) * width
    }

    /// Allocation-free multi-RHS solve: writes the solution of `A·X = B`
    /// into `out` for an `n×k` panel `B`, using `scratch` (length
    /// [`panel_scratch_len`](Self::panel_scratch_len)) for the
    /// forward-substitution intermediate plus one accumulator row.
    ///
    /// The substitution runs row-wise over the panel on the fused
    /// [`Scalar::fused_muladd`] kernel, but accumulates per column in
    /// exactly the order [`Lu::solve_into`] does (ascending `j`, one
    /// subtraction, one multiply by the row's pivot inverse), so the
    /// panel result is **bit-identical** to `k` independent per-column
    /// solves — exactly over finite fields and bitwise over `f64`. One
    /// pivot inversion per row is shared by all `k` columns, so over
    /// `Fp61` the panel solve also amortizes the Fermat inversions.
    ///
    /// # Errors
    ///
    /// * [`Error::ShapeMismatch`] when `b` or `out` is not `dim×k` or
    ///   `scratch` is not of length `(dim+1)·k`;
    /// * [`Error::Singular`] when a diagonal entry is not invertible
    ///   (impossible for a factorization produced by [`Lu::factor`]).
    pub fn solve_panel_into(
        &self,
        b: &Matrix<F>,
        scratch: &mut [F],
        out: &mut Matrix<F>,
    ) -> Result<()> {
        let n = self.dim();
        let k = b.ncols();
        if b.nrows() != n || out.shape() != (n, k) || scratch.len() != (n + 1) * k {
            return Err(Error::ShapeMismatch {
                op: "lu_solve_panel_into",
                lhs: (n, k),
                rhs: (out.nrows().max(b.nrows()), scratch.len()),
            });
        }
        if k == 0 {
            return Ok(());
        }
        let (s, acc) = scratch.split_at_mut(n * k);
        // Forward substitution on P·B with unit-diagonal L:
        // S[i,:] = B[perm[i],:] − Σ_{j<i} L[i,j]·S[j,:].
        for i in 0..n {
            let lrow = self.packed.row(i);
            let (done, rest) = s.split_at_mut(i * k);
            acc.fill(F::zero());
            for (j, srow) in done.chunks_exact(k).enumerate() {
                F::fused_muladd(acc, lrow[j], srow);
            }
            let brow = b.row(self.perm[i]);
            for ((t, &bv), &a) in rest[..k].iter_mut().zip(brow).zip(acc.iter()) {
                *t = bv.sub(a);
            }
        }
        // Backward substitution with U:
        // X[i,:] = (S[i,:] − Σ_{j>i} U[i,j]·X[j,:]) · U[i,i]⁻¹.
        let of = out.flat_mut();
        for i in (0..n).rev() {
            let urow = self.packed.row(i);
            let diag_inv = urow[i].inv().ok_or(Error::Singular)?;
            let (head, tail) = of.split_at_mut((i + 1) * k);
            acc.fill(F::zero());
            for (j, xrow) in tail.chunks_exact(k).enumerate() {
                F::fused_muladd(acc, urow[i + 1 + j], xrow);
            }
            let srow = &s[i * k..(i + 1) * k];
            for ((t, &sv), &a) in head[i * k..].iter_mut().zip(srow).zip(acc.iter()) {
                *t = sv.sub(a).mul(diag_inv);
            }
        }
        Ok(())
    }

    /// The determinant, from the product of `U`'s diagonal and the
    /// permutation sign.
    pub fn determinant(&self) -> F {
        let mut det = F::one();
        for i in 0..self.dim() {
            det = det.mul(self.packed.at(i, i));
        }
        if self.swaps_odd {
            det.neg()
        } else {
            det
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;
    use crate::gauss;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn factor_solve_matches_gauss() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 12] {
            let a = Matrix::<Fp61>::random(n, n, &mut rng);
            let lu = Lu::factor(&a).unwrap();
            for _ in 0..3 {
                let b = Vector::<Fp61>::random(n, &mut rng);
                let via_lu = lu.solve(&b).unwrap();
                let via_gauss = gauss::solve(&a, &b).unwrap();
                assert_eq!(via_lu, via_gauss, "n={n}");
            }
        }
    }

    #[test]
    fn f64_accuracy() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20;
        let a = Matrix::<f64>::random(n, n, &mut rng);
        let want = Vector::<f64>::random(n, &mut rng);
        let b = a.matvec(&want).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let got = lu.solve(&b).unwrap();
        for i in 0..n {
            assert!((got.at(i) - want.at(i)).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::<Fp61>::random(6, 6, &mut rng);
        let b = Matrix::<Fp61>::random(6, 4, &mut rng);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        assert_eq!(a.matmul(&x).unwrap(), b);
    }

    #[test]
    fn panel_solve_bit_identical_to_per_column() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in [1usize, 3, 8] {
            let a = Matrix::<Fp61>::random(9, 9, &mut rng);
            let b = Matrix::<Fp61>::random(9, k, &mut rng);
            let lu = Lu::factor(&a).unwrap();
            let panel = lu.solve_matrix(&b).unwrap();
            for c in 0..k {
                assert_eq!(panel.col(c), lu.solve(&b.col(c)).unwrap(), "k={k} c={c}");
            }

            // f64: bitwise, not approximate — the panel path performs the
            // same float ops in the same order as the per-column path.
            let af = Matrix::<f64>::random(9, 9, &mut rng);
            let bf = Matrix::<f64>::random(9, k, &mut rng);
            let luf = Lu::factor(&af).unwrap();
            let panelf = luf.solve_matrix(&bf).unwrap();
            for c in 0..k {
                let col = luf.solve(&bf.col(c)).unwrap();
                for i in 0..9 {
                    assert!(
                        panelf.at(i, c).to_bits() == col.at(i).to_bits(),
                        "f64 k={k} c={c} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn panel_solve_validates_shapes() {
        let a = Matrix::<f64>::identity(3);
        let lu = Lu::factor(&a).unwrap();
        let b = Matrix::<f64>::zeros(3, 2);
        assert_eq!(lu.panel_scratch_len(2), 8);
        let mut out = Matrix::zeros(3, 2);
        let mut short = vec![0.0; 7];
        assert!(lu.solve_panel_into(&b, &mut short, &mut out).is_err());
        let mut wrong_out = Matrix::zeros(2, 2);
        let mut scratch = vec![0.0; 8];
        assert!(lu
            .solve_panel_into(&b, &mut scratch, &mut wrong_out)
            .is_err());
        assert!(lu.solve_panel_into(&b, &mut scratch, &mut out).is_ok());
    }

    #[test]
    fn determinant_matches_gauss() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [2usize, 3, 6] {
            let a = Matrix::<Fp61>::random(n, n, &mut rng);
            let lu = Lu::factor(&a).unwrap();
            assert_eq!(lu.determinant(), gauss::determinant(&a).unwrap(), "n={n}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            Lu::factor(&Matrix::<f64>::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
        assert!(matches!(
            Lu::<f64>::factor(&Matrix::zeros(0, 0)),
            Err(Error::Empty)
        ));
        let singular = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&singular), Err(Error::Singular)));
        let a = Matrix::<f64>::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] needs the row swap to factor at all.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&Vector::from_vec(vec![3.0, 7.0])).unwrap();
        assert!((x.at(0) - 7.0).abs() < 1e-12);
        assert!((x.at(1) - 3.0).abs() < 1e-12);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }
}
