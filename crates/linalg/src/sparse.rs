//! Compressed sparse row (CSR) matrices.
//!
//! The structured encoding matrix of Eq. (8) has at most **two** non-zero
//! entries per row, so materializing it densely costs `(m+r)²` field
//! elements of which almost all are zero. `CsrMatrix` stores only the
//! non-zeros and multiplies in O(nnz) — the representation a
//! production cloud would use for encoding and verification at
//! `m = 10⁴⁺` scale.

use serde::{Deserialize, Serialize};

use crate::error::{Axis, Error, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// A sparse matrix in compressed-sparse-row form.
///
/// # Example
///
/// ```
/// use scec_linalg::{sparse::CsrMatrix, Matrix, Vector};
///
/// // [[1, 0], [0, 2]] from (row, col, value) triplets.
/// let s = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)])?;
/// let x = Vector::from_vec(vec![3.0, 4.0]);
/// assert_eq!(s.matvec(&x)?.as_slice(), &[3.0, 8.0]);
/// assert_eq!(s.to_dense(), Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 2.0]])?);
/// # Ok::<(), scec_linalg::Error>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix<F> {
    rows: usize,
    cols: usize,
    /// Row pointer: `indptr[i]..indptr[i+1]` indexes row `i`'s entries.
    indptr: Vec<usize>,
    /// Column index per stored entry.
    indices: Vec<usize>,
    /// Value per stored entry.
    values: Vec<F>,
}

impl<F: Scalar> std::fmt::Debug for CsrMatrix<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.values.len())
            .finish()
    }
}

impl<F: Scalar> CsrMatrix<F> {
    /// Builds from `(row, col, value)` triplets; duplicate positions are
    /// summed, explicit zeros dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] when a triplet is outside the
    /// shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, F)>,
    ) -> Result<Self> {
        for &(r, c, _) in &triplets {
            if r >= rows {
                return Err(Error::IndexOutOfBounds {
                    index: r,
                    bound: rows,
                    axis: Axis::Row,
                });
            }
            if c >= cols {
                return Err(Error::IndexOutOfBounds {
                    index: c,
                    bound: cols,
                    axis: Axis::Col,
                });
            }
        }
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values: Vec<F> = Vec::with_capacity(triplets.len());
        let mut row_counts = vec![0usize; rows];
        // Sorted, so duplicates of one position are adjacent: fold each
        // group into one entry, dropping groups that sum to zero.
        let mut i = 0;
        while i < triplets.len() {
            let (r, c, mut v) = triplets[i];
            let mut j = i + 1;
            while j < triplets.len() && triplets[j].0 == r && triplets[j].1 == c {
                v = v.add(triplets[j].2);
                j += 1;
            }
            if !v.is_zero() {
                indices.push(c);
                values.push(v);
                row_counts[r] += 1;
            }
            i = j;
        }
        for r in 0..rows {
            indptr[r + 1] = indptr[r] + row_counts[r];
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Converts a dense matrix (dropping zeros).
    pub fn from_dense(m: &Matrix<F>) -> Self {
        let mut triplets = Vec::new();
        for r in 0..m.nrows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if !v.is_zero() {
                    triplets.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(m.nrows(), m.ncols(), triplets)
            .expect("indices from a dense matrix are in range")
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The entries of row `i` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `i >= nrows`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, F)> + '_ {
        let span = self.indptr[i]..self.indptr[i + 1];
        self.indices[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&c, &v)| (c, v))
    }

    /// Densifies.
    pub fn to_dense(&self) -> Matrix<F> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, v).expect("in range");
            }
        }
        out
    }

    /// Sparse × dense vector in O(nnz).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `x.len() != ncols`.
    pub fn matvec(&self, x: &Vector<F>) -> Result<Vector<F>> {
        if x.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "sparse matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut acc = F::zero();
            for (c, v) in self.row_entries(r) {
                acc = acc.add(v.mul(xs[c]));
            }
            out.push(acc);
        }
        Ok(Vector::from_vec(out))
    }

    /// Sparse × dense matrix in O(nnz · rhs.ncols()).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `rhs.nrows() != ncols`.
    pub fn matmul(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        if rhs.nrows() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "sparse matmul",
                lhs: (self.rows, self.cols),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.ncols());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let src: &[F] = rhs.row(c);
                let dst: &mut [F] = out.row_mut(r);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = d.add(v.mul(s));
                }
            }
        }
        Ok(out)
    }

    /// The transpose, still sparse.
    pub fn transpose(&self) -> CsrMatrix<F> {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, triplets)
            .expect("transposed indices are in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn triplet_construction_and_dense_roundtrip() {
        let s =
            CsrMatrix::from_triplets(3, 4, vec![(0, 1, 2.0), (2, 3, 5.0), (1, 0, -1.0)]).unwrap();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 4);
        let d = s.to_dense();
        assert_eq!(d.at(0, 1), 2.0);
        assert_eq!(d.at(1, 0), -1.0);
        assert_eq!(d.at(2, 3), 5.0);
        assert_eq!(CsrMatrix::from_dense(&d), s);
    }

    #[test]
    fn out_of_range_triplets_are_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let s = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 0.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn duplicates_are_summed() {
        let s = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0), (1, 1, -5.0)],
        )
        .unwrap();
        let d = s.to_dense();
        assert_eq!(d.at(0, 0), 3.0);
        assert_eq!(d.at(1, 1), 0.0);
        assert_eq!(s.nnz(), 1); // the cancelled entry is dropped
    }

    #[test]
    fn matvec_matches_dense_random() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let dense = Matrix::<Fp61>::random(6, 8, &mut rng);
            // Sparsify: zero out most entries.
            let mut sparse_dense = Matrix::<Fp61>::zeros(6, 8);
            for r in 0..6 {
                for c in 0..8 {
                    if (r + c) % 3 == 0 {
                        sparse_dense.set(r, c, dense.at(r, c)).unwrap();
                    }
                }
            }
            let s = CsrMatrix::from_dense(&sparse_dense);
            let x = Vector::<Fp61>::random(8, &mut rng);
            assert_eq!(s.matvec(&x).unwrap(), sparse_dense.matvec(&x).unwrap());
            let rhs = Matrix::<Fp61>::random(8, 3, &mut rng);
            assert_eq!(s.matmul(&rhs).unwrap(), sparse_dense.matmul(&rhs).unwrap());
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = Matrix::<Fp61>::random(4, 6, &mut rng);
        let s = CsrMatrix::from_dense(&dense);
        assert_eq!(s.transpose().to_dense(), dense.transpose());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let s = CsrMatrix::<f64>::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap();
        assert!(s.matvec(&Vector::zeros(2)).is_err());
        assert!(s.matmul(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let s = CsrMatrix::<f64>::from_triplets(0, 0, vec![]).unwrap();
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense().shape(), (0, 0));
    }
}
