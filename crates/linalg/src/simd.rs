//! Explicit-SIMD-width kernels for GF(2⁶¹ − 1): an AVX2 microkernel for
//! the lazy dot product, behind runtime CPU-feature detection.
//!
//! # Dispatch policy
//!
//! [`Fp61`]'s [`Scalar::dot_slices`](crate::Scalar::dot_slices) override
//! routes through [`active`] + [`dot_fp61`]: slices of at least
//! [`MIN_DOT_LEN`] elements take the vector path when the CPU reports
//! AVX2 (checked once, cached), and everything else falls back to the
//! portable scalar lazy kernel. Because GF(2⁶¹ − 1) arithmetic is exact,
//! the two paths return *bit-identical* canonical representatives — the
//! dispatch is a pure speed decision, never a semantics decision, and
//! `--no-default-features` / non-x86 builds simply never take it.
//! [`force_scalar`] pins the dispatch to the scalar kernel so benches and
//! agreement tests can measure/compare both paths on the same machine.
//!
//! # The semi-reduced product
//!
//! AVX2 has no 64×64→128 lane multiply, so the microkernel splits each
//! canonical representative `a < 2^61` as `a = aH·2^32 + aL` and builds
//! the product from four 32×32→64 [`_mm256_mul_epu32`] partials:
//!
//! ```text
//! a·b = LL + 2^32·(LH + HL) + 2^64·HH
//! ```
//!
//! Each term is folded into a *semi-reduced* 64-bit lane value using the
//! Mersenne identity `2^61 ≡ 1 (mod p)`:
//!
//! * `2^64·HH ≡ 8·HH < 2^61`  (HH < 2^58);
//! * `2^32·M ≡ M_hi + M_lo·2^32` for `M = LH + HL < 2^62` split at bit 29
//!   (`M_hi = M >> 29 < 2^33`, `M_lo·2^32 < 2^61`);
//! * `LL ≡ (LL & p) + (LL >> 61) < 2^61 + 8`.
//!
//! The sum `t` of the three folded terms stays below `3·2^61 + 2^34`, so
//! one more fold gives a semi-reduced product `< 2^61 + 3` per lane. A
//! 4×u64 accumulator absorbs six semi-reduced products plus its own
//! folded carry (`7·(2^61 + 8) < 2^64`) before it must fold again, which
//! sets the 24-element block length [`MIN_DOT_LEN`]. The horizontal
//! finish sums the four lanes (and the scalar tail) in `u128` and
//! canonicalizes with the same wide reduction the scalar kernel uses.
//!
//! An equivalent `std::simd` portable-vector kernel is available behind
//! the non-default `portable-simd` cargo feature (nightly-only; the CI
//! matrix never enables it).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

use crate::fp::Fp61;

/// Minimum slice length for which the vector path is attempted: one full
/// accumulator block. Shorter dots (e.g. triangular-solve prefixes) stay
/// on the scalar kernel, whose startup cost is lower.
pub const MIN_DOT_LEN: usize = 24;

/// Bench/test override: when `true`, [`active`] reports `false` and every
/// dot runs the portable scalar kernel regardless of CPU features.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Pins (`true`) or unpins (`false`) the dot dispatch to the scalar lazy
/// kernel. Used by `scec bench` to measure the scalar and SIMD paths
/// separately on the same machine, and by agreement tests.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the running CPU supports the AVX2 microkernel. Detected once
/// and cached; always `false` on non-x86_64 targets.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static DETECTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether [`dot_fp61`] would currently take a vector path: a SIMD
/// kernel is compiled in and available on this CPU, and no
/// [`force_scalar`] override is in effect.
pub fn active() -> bool {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return false;
    }
    #[cfg(feature = "portable-simd")]
    {
        return true;
    }
    #[cfg(not(feature = "portable-simd"))]
    avx2_available()
}

/// Vector dot product over GF(2⁶¹ − 1), or `None` when no SIMD path is
/// available (wrong architecture, AVX2 absent, or [`force_scalar`] set).
/// When `Some`, the result is the canonical representative and is
/// bit-identical to [`Fp61::dot_slices_scalar`].
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn dot_fp61(a: &[Fp61], b: &[Fp61]) -> Option<Fp61> {
    assert_eq!(a.len(), b.len(), "simd dot length mismatch");
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // Safety: AVX2 support was just verified at runtime.
        return Some(unsafe { avx2::dot(a, b) });
    }
    #[cfg(feature = "portable-simd")]
    {
        return Some(portable::dot(a, b));
    }
    #[allow(unreachable_code)]
    None
}

/// Four vector dot products over GF(2⁶¹ − 1) sharing the left operand,
/// or `None` when no SIMD path is available. The 4-column microkernel
/// loads each `a` vector once and feeds four independent accumulator
/// chains — the single-dot kernel is latency-bound on its one
/// accumulator, so this is where the matmul speedup actually comes from.
/// When `Some`, each entry is bit-identical to the corresponding
/// [`dot_fp61`] / scalar result.
///
/// # Panics
///
/// Panics when any slice length differs from `a`'s.
pub fn dot4_fp61(a: &[Fp61], b: [&[Fp61]; 4]) -> Option<[Fp61; 4]> {
    for col in &b {
        assert_eq!(a.len(), col.len(), "simd dot4 length mismatch");
    }
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // Safety: AVX2 support was just verified at runtime.
        return Some(unsafe { avx2::dot4(a, b) });
    }
    #[cfg(feature = "portable-simd")]
    {
        return Some([
            portable::dot(a, b[0]),
            portable::dot(a, b[1]),
            portable::dot(a, b[2]),
            portable::dot(a, b[3]),
        ]);
    }
    #[allow(unreachable_code)]
    None
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_loadu_si256, _mm256_mul_epu32,
        _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_slli_epi64, _mm256_srli_epi64,
        _mm256_storeu_si256,
    };

    use crate::fp::{Fp61, MODULUS};

    /// Elements per accumulator block: 6 vectors × 4 lanes. Derived in
    /// the module docs from the `7·(2^61 + 8) < 2^64` lane headroom.
    const BLOCK: usize = 24;

    /// Semi-reduced lane-wise product of canonical representatives: each
    /// output lane is `< 2^61 + 3` and congruent to `a·b (mod p)`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn mul_semi(av: __m256i, bv: __m256i, p: __m256i, mask29: __m256i) -> __m256i {
        let ah = _mm256_srli_epi64::<32>(av);
        let bh = _mm256_srli_epi64::<32>(bv);
        // mul_epu32 multiplies the low 32 bits of each 64-bit lane.
        let ll = _mm256_mul_epu32(av, bv);
        let lh = _mm256_mul_epu32(av, bh);
        let hl = _mm256_mul_epu32(ah, bv);
        let hh = _mm256_mul_epu32(ah, bh);
        // 2^32·(LH + HL) ≡ M_hi + M_lo·2^32 with M split at bit 29.
        let m = _mm256_add_epi64(lh, hl);
        let mterm = _mm256_add_epi64(
            _mm256_slli_epi64::<32>(_mm256_and_si256(m, mask29)),
            _mm256_srli_epi64::<29>(m),
        );
        // 2^64·HH ≡ 8·HH.
        let hterm = _mm256_slli_epi64::<3>(hh);
        // LL ≡ (LL & p) + (LL >> 61).
        let lterm = _mm256_add_epi64(_mm256_and_si256(ll, p), _mm256_srli_epi64::<61>(ll));
        let t = _mm256_add_epi64(_mm256_add_epi64(lterm, mterm), hterm);
        _mm256_add_epi64(_mm256_and_si256(t, p), _mm256_srli_epi64::<61>(t))
    }

    /// AVX2 lazy dot product; returns the canonical representative.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support (`avx2_available()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(a: &[Fp61], b: &[Fp61]) -> Fp61 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        // Safety: Fp61 is #[repr(transparent)] over u64.
        let ap = a.as_ptr() as *const u64;
        let bp = b.as_ptr() as *const u64;
        let p = _mm256_set1_epi64x(MODULUS as i64);
        let mask29 = _mm256_set1_epi64x(((1u64 << 29) - 1) as i64);
        let mut acc = _mm256_setzero_si256();
        let blocks = n / BLOCK;
        for blk in 0..blocks {
            let base = blk * BLOCK;
            // Six semi-reduced products per lane, then one fold: the
            // folded carry plus six semis stays below 2^64 (module docs).
            for v in 0..6 {
                let off = base + v * 4;
                let av = _mm256_loadu_si256(ap.add(off) as *const __m256i);
                let bv = _mm256_loadu_si256(bp.add(off) as *const __m256i);
                acc = _mm256_add_epi64(acc, mul_semi(av, bv, p, mask29));
            }
            acc = _mm256_add_epi64(_mm256_and_si256(acc, p), _mm256_srli_epi64::<61>(acc));
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total: u128 = lanes.iter().map(|&x| x as u128).sum();
        // Scalar tail: at most BLOCK−1 unreduced products, well inside
        // u128 headroom on top of the four folded lanes.
        for i in blocks * BLOCK..n {
            total += (*ap.add(i) as u128) * (*bp.add(i) as u128);
        }
        Fp61::from_canonical(Fp61::reduce_wide(total))
    }

    /// AVX2 4-column lazy dot: `[a·b0, a·b1, a·b2, a·b3]` with one `a`
    /// load shared across four independent accumulators. Each column
    /// runs exactly the semi-reduce/fold/finish sequence of [`dot`], so
    /// the results are bit-identical to four single dots.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support (`avx2_available()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot4(a: &[Fp61], b: [&[Fp61]; 4]) -> [Fp61; 4] {
        let n = a.len();
        // Safety: Fp61 is #[repr(transparent)] over u64.
        let ap = a.as_ptr() as *const u64;
        let bps = [
            b[0].as_ptr() as *const u64,
            b[1].as_ptr() as *const u64,
            b[2].as_ptr() as *const u64,
            b[3].as_ptr() as *const u64,
        ];
        let p = _mm256_set1_epi64x(MODULUS as i64);
        let mask29 = _mm256_set1_epi64x(((1u64 << 29) - 1) as i64);
        let mut acc = [_mm256_setzero_si256(); 4];
        let blocks = n / BLOCK;
        for blk in 0..blocks {
            let base = blk * BLOCK;
            for v in 0..6 {
                let off = base + v * 4;
                let av = _mm256_loadu_si256(ap.add(off) as *const __m256i);
                for (c, bp) in bps.iter().enumerate() {
                    let bv = _mm256_loadu_si256(bp.add(off) as *const __m256i);
                    acc[c] = _mm256_add_epi64(acc[c], mul_semi(av, bv, p, mask29));
                }
            }
            for a in &mut acc {
                *a = _mm256_add_epi64(_mm256_and_si256(*a, p), _mm256_srli_epi64::<61>(*a));
            }
        }
        let mut out = [Fp61::new(0); 4];
        for (c, bp) in bps.iter().enumerate() {
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc[c]);
            let mut total: u128 = lanes.iter().map(|&x| x as u128).sum();
            for i in blocks * BLOCK..n {
                total += (*ap.add(i) as u128) * (*bp.add(i) as u128);
            }
            out[c] = Fp61::from_canonical(Fp61::reduce_wide(total));
        }
        out
    }
}

/// `std::simd` portable-vector kernel (nightly-only, behind the
/// non-default `portable-simd` feature). Same semi-reduced block scheme
/// as the AVX2 kernel, written against `u64x4`; the 32×32→64 partial
/// products use plain lane multiplies of masked halves, which cannot
/// overflow.
#[cfg(feature = "portable-simd")]
mod portable {
    use std::simd::u64x4;

    use crate::fp::{Fp61, MODULUS};

    const BLOCK: usize = 24;

    #[inline]
    fn mul_semi(av: u64x4, bv: u64x4, p: u64x4, mask29: u64x4, mask32: u64x4) -> u64x4 {
        let al = av & mask32;
        let ah = av >> 32;
        let bl = bv & mask32;
        let bh = bv >> 32;
        let ll = al * bl;
        let m = al * bh + ah * bl;
        let mterm = ((m & mask29) << 32) + (m >> 29);
        let hterm = (ah * bh) << 3;
        let lterm = (ll & p) + (ll >> 61);
        let t = lterm + mterm + hterm;
        (t & p) + (t >> 61)
    }

    pub(super) fn dot(a: &[Fp61], b: &[Fp61]) -> Fp61 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let p = u64x4::splat(MODULUS);
        let mask29 = u64x4::splat((1u64 << 29) - 1);
        let mask32 = u64x4::splat(u32::MAX as u64);
        let mut acc = u64x4::splat(0);
        let blocks = n / BLOCK;
        let mut lane = [0u64; 4];
        for blk in 0..blocks {
            let base = blk * BLOCK;
            for v in 0..6 {
                let off = base + v * 4;
                for (l, slot) in lane.iter_mut().enumerate() {
                    *slot = a[off + l].residue();
                }
                let av = u64x4::from_array(lane);
                for (l, slot) in lane.iter_mut().enumerate() {
                    *slot = b[off + l].residue();
                }
                let bv = u64x4::from_array(lane);
                acc += mul_semi(av, bv, p, mask29, mask32);
            }
            acc = (acc & p) + (acc >> 61);
        }
        let mut total: u128 = acc.to_array().iter().map(|&x| x as u128).sum();
        for i in blocks * BLOCK..n {
            total += a[i].residue() as u128 * b[i].residue() as u128;
        }
        Fp61::from_canonical(Fp61::reduce_wide(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn simd_dot_matches_scalar_when_available() {
        let Some(()) = avx2_available().then_some(()) else {
            eprintln!("AVX2 unavailable; skipping simd agreement test");
            return;
        };
        let mut rng = StdRng::seed_from_u64(77);
        for n in [0usize, 1, 4, 23, 24, 25, 47, 48, 100, 1000] {
            let a: Vec<Fp61> = (0..n).map(|_| Fp61::sample(&mut rng)).collect();
            let b: Vec<Fp61> = (0..n).map(|_| Fp61::sample(&mut rng)).collect();
            let simd = dot_fp61(&a, &b).expect("avx2 path");
            assert_eq!(simd, Fp61::dot_slices_scalar(&a, &b), "length {n}");
        }
    }

    #[test]
    fn simd_dot_survives_all_maximum_inputs() {
        // Overflow boundary: every product is (p−1)², the largest the
        // semi-reduction and lane accumulator ever absorb.
        if !avx2_available() {
            return;
        }
        let max = Fp61::new(crate::fp::MODULUS - 1);
        for n in [24usize, 25, 24 * 7, 24 * 7 + 23] {
            let a = vec![max; n];
            let simd = dot_fp61(&a, &a).expect("avx2 path");
            assert_eq!(simd, Fp61::dot_slices_scalar(&a, &a), "length {n}");
        }
    }

    #[test]
    fn simd_dot_random_lengths_fuzz() {
        if !avx2_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..50 {
            let n = rng.gen_range(0..400);
            let a: Vec<Fp61> = (0..n).map(|_| Fp61::sample(&mut rng)).collect();
            let b: Vec<Fp61> = (0..n).map(|_| Fp61::sample(&mut rng)).collect();
            assert_eq!(
                dot_fp61(&a, &b).expect("avx2 path"),
                Fp61::dot_slices_scalar(&a, &b),
            );
        }
    }

    #[test]
    fn simd_dot4_matches_four_single_dots() {
        if !avx2_available() {
            eprintln!("AVX2 unavailable; skipping simd dot4 agreement test");
            return;
        }
        let mut rng = StdRng::seed_from_u64(79);
        for n in [0usize, 1, 23, 24, 25, 96, 100, 333] {
            let a: Vec<Fp61> = (0..n).map(|_| Fp61::sample(&mut rng)).collect();
            let cols: Vec<Vec<Fp61>> = (0..4)
                .map(|_| (0..n).map(|_| Fp61::sample(&mut rng)).collect())
                .collect();
            let got = dot4_fp61(&a, [&cols[0], &cols[1], &cols[2], &cols[3]]).expect("avx2 path");
            for c in 0..4 {
                assert_eq!(
                    got[c],
                    Fp61::dot_slices_scalar(&a, &cols[c]),
                    "n={n} col={c}"
                );
            }
        }
        // Overflow boundary, as in the single-dot test.
        let max = vec![Fp61::new(crate::fp::MODULUS - 1); 24 * 7 + 23];
        let got = dot4_fp61(&max, [&max, &max, &max, &max]).expect("avx2 path");
        for v in got {
            assert_eq!(v, Fp61::dot_slices_scalar(&max, &max));
        }
    }

    #[test]
    fn force_scalar_pins_dispatch() {
        force_scalar(true);
        assert!(!active());
        assert_eq!(dot_fp61(&[Fp61::new(3)], &[Fp61::new(5)]), None);
        force_scalar(false);
        // Dispatched dot (whatever the platform) equals the scalar kernel.
        let a: Vec<Fp61> = (0..100).map(|i| Fp61::new(i * 17 + 1)).collect();
        let b: Vec<Fp61> = (0..100).map(|i| Fp61::new(i * 31 + 2)).collect();
        assert_eq!(Fp61::dot_slices(&a, &b), Fp61::dot_slices_scalar(&a, &b));
    }
}
