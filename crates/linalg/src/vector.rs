//! Dense vectors over a generic [`Scalar`] field.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{Axis, Error, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A dense column vector over a field `F`.
///
/// The user's input `x`, each device's intermediate result `B_j T x`, and
/// the recovered output `y = A x` are all `Vector` values.
///
/// # Example
///
/// ```
/// use scec_linalg::Vector;
///
/// let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
/// let y = Vector::from_vec(vec![1.0, 1.0, 1.0]);
/// assert_eq!(x.add(&y)?.as_slice(), &[2.0, 3.0, 4.0]);
/// assert_eq!(x.dot(&y)?, 6.0);
/// # Ok::<(), scec_linalg::Error>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector<F> {
    data: Vec<F>,
}

impl<F: Scalar> Vector<F> {
    /// Wraps an owned `Vec` as a vector.
    pub fn from_vec(data: Vec<F>) -> Self {
        Vector { data }
    }

    /// The zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector {
            data: vec![F::zero(); n],
        }
    }

    /// A vector of entries drawn by [`Scalar::sample`].
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Vector {
            data: (0..n).map(|_| F::sample(rng)).collect(),
        }
    }

    /// Length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the entries.
    #[inline]
    pub fn as_slice(&self) -> &[F] {
        &self.data
    }

    /// Mutably borrow the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [F] {
        &mut self.data
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<F> {
        self.data
    }

    /// Checked element access.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] when `i >= self.len()`.
    pub fn get(&self, i: usize) -> Result<F> {
        self.data.get(i).copied().ok_or(Error::IndexOutOfBounds {
            index: i,
            bound: self.data.len(),
            axis: Axis::Row,
        })
    }

    /// Panicking element access.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn at(&self, i: usize) -> F {
        self.data[i]
    }

    /// Entry-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when lengths differ.
    pub fn add(&self, rhs: &Vector<F>) -> Result<Vector<F>> {
        self.zip_with(rhs, "add", F::add)
    }

    /// Entry-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when lengths differ.
    pub fn sub(&self, rhs: &Vector<F>) -> Result<Vector<F>> {
        self.zip_with(rhs, "sub", F::sub)
    }

    fn zip_with(
        &self,
        rhs: &Vector<F>,
        op: &'static str,
        f: impl Fn(F, F) -> F,
    ) -> Result<Vector<F>> {
        if self.len() != rhs.len() {
            return Err(Error::ShapeMismatch {
                op,
                lhs: (self.len(), 1),
                rhs: (rhs.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: F) -> Vector<F> {
        Vector {
            data: self.data.iter().map(|&a| a.mul(s)).collect(),
        }
    }

    /// Inner product.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, rhs: &Vector<F>) -> Result<F> {
        if self.len() != rhs.len() {
            return Err(Error::ShapeMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (rhs.len(), 1),
            });
        }
        // Fused kernel: lazy reduction over Fp61, naive fold elsewhere.
        Ok(F::dot_slices(&self.data, &rhs.data))
    }

    /// Concatenates two vectors (used to stack per-device intermediate
    /// results into `B T x`).
    pub fn concat(&self, rhs: &Vector<F>) -> Vector<F> {
        let mut data = Vec::with_capacity(self.len() + rhs.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Vector { data }
    }

    /// The sub-vector `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] when the range exceeds the length.
    pub fn slice(&self, start: usize, end: usize) -> Result<Vector<F>> {
        if end > self.len() || start > end {
            return Err(Error::IndexOutOfBounds {
                index: end.max(start),
                bound: self.len(),
                axis: Axis::Row,
            });
        }
        Ok(Vector {
            data: self.data[start..end].to_vec(),
        })
    }

    /// Reinterprets the vector as an `n × 1` matrix.
    pub fn into_column_matrix(self) -> Matrix<F> {
        let n = self.len();
        Matrix::from_flat(n, 1, self.data).expect("length matches by construction")
    }

    /// Reinterprets the vector as a `1 × n` matrix.
    pub fn into_row_matrix(self) -> Matrix<F> {
        let n = self.len();
        Matrix::from_flat(1, n, self.data).expect("length matches by construction")
    }
}

impl<F: Scalar> FromIterator<F> for Vector<F> {
    fn from_iter<I: IntoIterator<Item = F>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<F: Scalar> Extend<F> for Vector<F> {
    fn extend<I: IntoIterator<Item = F>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl<F: Scalar> fmt::Debug for Vector<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 12;
        write!(f, "Vector[{}](", self.data.len())?;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn basic_construction() {
        let v = Vector::from_vec(vec![1.0, 2.0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert!(Vector::<f64>::zeros(0).is_empty());
        assert_eq!(Vector::<f64>::zeros(3).as_slice(), &[0.0; 3]);
    }

    #[test]
    fn get_and_at() {
        let v = Vector::from_vec(vec![5.0, 6.0]);
        assert_eq!(v.get(1).unwrap(), 6.0);
        assert!(v.get(2).is_err());
        assert_eq!(v.at(0), 5.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.dot(&b).unwrap(), 13.0);
        let short = Vector::from_vec(vec![1.0]);
        assert!(a.add(&short).is_err());
        assert!(a.sub(&short).is_err());
        assert!(a.dot(&short).is_err());
    }

    #[test]
    fn concat_slice() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.slice(1, 3).unwrap().as_slice(), &[2.0, 3.0]);
        assert!(c.slice(2, 4).is_err());
        assert_eq!(c.slice(1, 1).unwrap().len(), 0);
    }

    #[test]
    fn matrix_conversions() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let col = v.clone().into_column_matrix();
        assert_eq!(col.shape(), (3, 1));
        let row = v.into_row_matrix();
        assert_eq!(row.shape(), (1, 3));
        assert_eq!(row.at(0, 2), 3.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut v: Vector<f64> = (0..3).map(|i| i as f64).collect();
        v.extend([3.0, 4.0]);
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn random_fp_vector() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = Vector::<Fp61>::random(8, &mut rng);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn debug_is_clamped() {
        let v = Vector::<f64>::zeros(50);
        let s = format!("{v:?}");
        assert!(s.starts_with("Vector[50]("));
        assert!(s.contains('…'));
    }
}
