//! Row-span calculus: dimensions of spans, sums, and intersections.
//!
//! The paper states its security condition in span form (Sec. II-B):
//! an LCEC is information-theoretically secure iff for every device `j`,
//! `dim(L(B_j) ∩ L(λ̄)) = 0`, where `λ̄ = [E_m | O_{m,r}]` spans all linear
//! combinations of pure data rows. This module computes exactly those
//! quantities using the dimension formula
//! `dim(U ∩ V) = dim U + dim V − dim(U + V)`.

use crate::gauss::{rank, rref};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Dimension of the row span of `m` (equals its rank).
pub fn dim<F: Scalar>(m: &Matrix<F>) -> usize {
    rank(m)
}

/// Dimension of the sum `L(a) + L(b)` of two row spans.
///
/// Both matrices must have the same number of columns; an empty operand
/// (zero rows) contributes nothing.
///
/// # Panics
///
/// Panics when the column counts differ and both operands are non-empty.
pub fn sum_dim<F: Scalar>(a: &Matrix<F>, b: &Matrix<F>) -> usize {
    match (a.nrows() == 0, b.nrows() == 0) {
        (true, true) => 0,
        (true, false) => rank(b),
        (false, true) => rank(a),
        (false, false) => {
            let stacked = a
                .vstack(b)
                .expect("sum_dim requires operands with equal column counts");
            rank(&stacked)
        }
    }
}

/// Dimension of the intersection `L(a) ∩ L(b)` of two row spans.
///
/// This is the paper's security functional: a device block `B_j` is secure
/// iff `intersection_dim(B_j, λ̄) == 0`.
///
/// # Panics
///
/// Panics when the column counts differ and both operands are non-empty.
pub fn intersection_dim<F: Scalar>(a: &Matrix<F>, b: &Matrix<F>) -> usize {
    if a.nrows() == 0 || b.nrows() == 0 {
        return 0;
    }
    let da = rank(a);
    let db = rank(b);
    da + db - sum_dim(a, b)
}

/// The matrix `λ̄ = [E_m | O_{m,r}]` whose row span is every linear
/// combination of pure data rows (Sec. II-B).
pub fn data_span_basis<F: Scalar>(m: usize, r: usize) -> Matrix<F> {
    Matrix::identity(m)
        .hstack(&Matrix::zeros(m, r))
        .expect("identity and zero blocks have matching row counts")
}

/// Whether the row span of `candidate` contains the vector `v` (given as a
/// `1 × n` matrix row).
///
/// Used by the simulated adversary: a device that could reconstruct some
/// pure-data combination would have that combination inside its span.
pub fn contains<F: Scalar>(candidate: &Matrix<F>, v: &[F]) -> bool {
    if candidate.nrows() == 0 {
        return v.iter().all(Scalar::is_zero);
    }
    assert_eq!(
        candidate.ncols(),
        v.len(),
        "vector length must match column count"
    );
    let row = Matrix::from_flat(1, v.len(), v.to_vec()).expect("shape matches");
    let base = rank(candidate);
    let joined = candidate.vstack(&row).expect("column counts match");
    rank(&joined) == base
}

/// A canonical basis (RREF non-zero rows) of the row span of `m`.
///
/// Two matrices have equal row spans iff their canonical bases are equal,
/// which gives tests a cheap span-equality oracle.
pub fn canonical_basis<F: Scalar>(m: &Matrix<F>) -> Matrix<F> {
    let red = rref(m);
    let k = red.rank();
    if k == 0 {
        return Matrix::zeros(0, m.ncols());
    }
    red.matrix
        .row_block(0, k)
        .expect("rank is at most the row count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;

    fn mat(rows: Vec<Vec<f64>>) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn dims_of_simple_spans() {
        let a = mat(vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        let b = mat(vec![vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        assert_eq!(dim(&a), 2);
        assert_eq!(sum_dim(&a, &b), 3);
        assert_eq!(intersection_dim(&a, &b), 1); // shared e2 axis
    }

    #[test]
    fn disjoint_spans_have_zero_intersection() {
        let a = mat(vec![vec![1.0, 0.0, 0.0, 0.0]]);
        let b = mat(vec![vec![0.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 0.0]]);
        assert_eq!(intersection_dim(&a, &b), 0);
    }

    #[test]
    fn empty_operands() {
        let e = Matrix::<f64>::zeros(0, 3);
        let a = mat(vec![vec![1.0, 2.0, 3.0]]);
        assert_eq!(sum_dim(&e, &a), 1);
        assert_eq!(sum_dim(&a, &e), 1);
        assert_eq!(sum_dim(&e, &e), 0);
        assert_eq!(intersection_dim(&e, &a), 0);
        assert_eq!(intersection_dim(&a, &e), 0);
    }

    #[test]
    fn paper_security_example() {
        // B_j = [E_2 | E_2]: each coded row is data + random. Secure.
        let b_j = Matrix::<f64>::identity(2)
            .hstack(&Matrix::identity(2))
            .unwrap();
        let lambda = data_span_basis::<f64>(2, 2);
        assert_eq!(intersection_dim(&b_j, &lambda), 0);

        // An insecure block: a pure data row leaks.
        let leaky = mat(vec![vec![1.0, 0.0, 0.0, 0.0]]);
        assert_eq!(intersection_dim(&leaky, &lambda), 1);

        // Two coded rows sharing ONE random vector: their difference is a
        // pure-data combination A_1 - A_2, so the intersection is non-zero.
        let shared_random = mat(vec![vec![1.0, 0.0, 1.0, 0.0], vec![0.0, 1.0, 1.0, 0.0]]);
        assert_eq!(intersection_dim(&shared_random, &lambda), 1);
    }

    #[test]
    fn security_example_over_fp61() {
        let one = Fp61::new(1);
        let zero = Fp61::new(0);
        let b_j = Matrix::from_rows(vec![vec![one, zero, one, zero], vec![zero, one, zero, one]])
            .unwrap();
        let lambda = data_span_basis::<Fp61>(2, 2);
        assert_eq!(intersection_dim(&b_j, &lambda), 0);
    }

    #[test]
    fn contains_membership() {
        let a = mat(vec![vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]);
        assert!(contains(&a, &[1.0, 1.0, 2.0]));
        assert!(!contains(&a, &[1.0, 0.0, 0.0]));
        assert!(contains(&a, &[0.0, 0.0, 0.0])); // zero vector is in any span
        let empty = Matrix::<f64>::zeros(0, 3);
        assert!(contains(&empty, &[0.0, 0.0, 0.0]));
        assert!(!contains(&empty, &[1.0, 0.0, 0.0]));
    }

    #[test]
    fn canonical_basis_equality_oracle() {
        let a = mat(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let scaled = mat(vec![vec![2.0, 4.0], vec![3.0, 4.0]]);
        assert_eq!(canonical_basis(&a), canonical_basis(&scaled));
        let different = mat(vec![vec![1.0, 0.0]]);
        assert_ne!(canonical_basis(&a), canonical_basis(&different));
        let zero = Matrix::<f64>::zeros(2, 2);
        assert_eq!(canonical_basis(&zero).nrows(), 0);
    }

    #[test]
    fn data_span_basis_shape() {
        let l = data_span_basis::<f64>(3, 2);
        assert_eq!(l.shape(), (3, 5));
        assert_eq!(l.at(0, 0), 1.0);
        assert_eq!(l.at(2, 4), 0.0);
        assert_eq!(dim(&l), 3);
    }
}
