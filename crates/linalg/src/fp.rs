//! The Mersenne prime field GF(2⁶¹ − 1).
//!
//! Random vectors drawn uniformly from a finite field are what make the
//! paper's security guarantee *information-theoretic*: conditioned on the
//! coded rows a single device observes, every data matrix remains equally
//! likely (Definition 2, `H(A | B_j T) = H(A)`). 2⁶¹ − 1 is chosen because
//! Mersenne reduction keeps multiplication branch-free and fast, while the
//! field is comfortably larger than any payload precision we need.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scalar::Scalar;

/// The field modulus `p = 2^61 - 1` (a Mersenne prime).
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// Maximum number of unreduced products the lazy kernels accumulate in a
/// `u128` between reductions.
///
/// Each product of canonical representatives is at most `(p−1)² < 2^122`,
/// and the folded carry from the previous block is `< 2^61`, so a block of
/// `63` products stays below `63·2^122 + 2^61 < 2^128` — no overflow. This
/// is the headroom the Mersenne prime buys: one `reduce128` per 63 terms
/// instead of one per multiply.
pub const LAZY_BLOCK: usize = 63;

/// `2^122 − 1 = p·(p+2)` — a multiple of `p` that dominates every product
/// of canonical representatives (`(p−1)² = 2^122 − 2^63 + 4`). Adding
/// `FOLD_ZERO − a·b` is how the fused kernels subtract a product without
/// first reducing it.
const FOLD_ZERO: u128 = (1u128 << 122) - 1;

/// An element of GF(2⁶¹ − 1).
///
/// The canonical representative is always kept in `[0, p)`. Arithmetic
/// operators (`+`, `-`, `*`, `/`) are implemented on values; `/` panics on
/// division by zero, while the [`Scalar::inv`]/[`Scalar::div`] trait methods
/// return `None` instead.
///
/// # Example
///
/// ```
/// use scec_linalg::Fp61;
///
/// let a = Fp61::new(7);
/// let b = Fp61::new(3);
/// assert_eq!((a * b).residue(), 21);
/// assert_eq!((a / b) * b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
#[repr(transparent)] // the simd kernels reinterpret &[Fp61] as &[u64]
pub struct Fp61(u64);

impl Fp61 {
    /// Creates a field element from any `u64`, reducing modulo `p`.
    #[inline]
    pub fn new(value: u64) -> Self {
        Fp61(value % MODULUS)
    }

    /// Creates a field element from a signed integer, mapping negatives to
    /// their additive-inverse representatives.
    #[inline]
    pub fn from_i64(value: i64) -> Self {
        if value >= 0 {
            Fp61::new(value as u64)
        } else {
            -Fp61::new(value.unsigned_abs())
        }
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn residue(self) -> u64 {
        self.0
    }

    /// Fast reduction of a 128-bit value into `[0, p)` using the Mersenne
    /// structure of the modulus: `x mod (2^61 - 1)` folds the high bits onto
    /// the low bits.
    ///
    /// Valid for `x < 2^122 + 2^61` — which covers both a product of
    /// canonical representatives (`(p−1)² < 2^122`) and the fused-kernel
    /// sums `t + prod` and `t + (FOLD_ZERO − prod)`. For arbitrary `u128`
    /// values (the lazy dot accumulator) use [`Fp61::reduce_wide`].
    #[inline]
    fn reduce128(x: u128) -> u64 {
        let lo = (x as u64) & MODULUS;
        let hi = (x >> 61) as u64;
        let mut s = lo + hi;
        if s >= MODULUS {
            s -= MODULUS;
        }
        // Two conditional subtractions suffice: for x < 2^122 + 2^61 the
        // fold gives hi ≤ 2^61 and lo < 2^61, so lo + hi < 2^62 < 3p.
        if s >= MODULUS {
            s -= MODULUS;
        }
        s
    }

    /// Creates a field element from an already-canonical representative
    /// (crate-internal: the simd kernels produce canonical residues).
    #[inline]
    pub(crate) fn from_canonical(value: u64) -> Self {
        debug_assert!(value < MODULUS);
        Fp61(value)
    }

    /// Full-range reduction of any `u128` into `[0, p)` via two folds.
    ///
    /// The lazy dot kernel accumulates up to [`LAZY_BLOCK`] unreduced
    /// products (`< 2^128`), so its accumulator exceeds the domain of
    /// [`Fp61::reduce128`]; this variant folds twice.
    #[inline]
    pub(crate) fn reduce_wide(x: u128) -> u64 {
        // First fold: x = hi·2^61 + lo with hi < 2^67 ⇒ hi + lo < 2^68.
        let folded = (x >> 61) + (x & MODULUS as u128);
        // Second fold now fits comfortably in u64 arithmetic.
        let lo = (folded as u64) & MODULUS;
        let hi = (folded >> 61) as u64; // < 2^7
        let mut s = lo + hi;
        if s >= MODULUS {
            s -= MODULUS;
        }
        s
    }

    /// The portable scalar lazy dot kernel: unreduced `u128` accumulation
    /// in four ILP lanes with one wide reduction per [`LAZY_BLOCK`]
    /// products. This is the dispatch fallback of
    /// [`Scalar::dot_slices`]; it is public so benches and agreement
    /// tests can pin the scalar path explicitly (see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics (debug) when the slices have different lengths.
    pub fn dot_slices_scalar(a: &[Fp61], b: &[Fp61]) -> Fp61 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc: u128 = 0;
        for (ca, cb) in a.chunks(LAZY_BLOCK).zip(b.chunks(LAZY_BLOCK)) {
            // Entering each block acc < 2^61 (folded carry), and 63
            // products of at most (p−1)² keep the sum below 2^128 no
            // matter how they are split across the four lanes below.
            //
            // Four independent accumulators break the loop-carried
            // add-with-carry chain: a single u128 accumulator serializes
            // at ~2 cycles per product, while independent lanes let the
            // multiplies pipeline.
            let (mut e0, mut e1, mut e2, mut e3) = (0u128, 0u128, 0u128, 0u128);
            let mut qa = ca.chunks_exact(4);
            let mut qb = cb.chunks_exact(4);
            for (pa, pb) in (&mut qa).zip(&mut qb) {
                e0 += pa[0].0 as u128 * pb[0].0 as u128;
                e1 += pa[1].0 as u128 * pb[1].0 as u128;
                e2 += pa[2].0 as u128 * pb[2].0 as u128;
                e3 += pa[3].0 as u128 * pb[3].0 as u128;
            }
            for (&x, &y) in qa.remainder().iter().zip(qb.remainder()) {
                e0 += x.0 as u128 * y.0 as u128;
            }
            acc = Fp61::reduce_wide(acc + (e0 + e1) + (e2 + e3)) as u128;
        }
        Fp61(acc as u64)
    }

    /// Modular exponentiation by squaring.
    #[inline]
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Fp61(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }
}

impl fmt::Debug for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp61({})", self.0)
    }
}

impl fmt::Display for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Fp61 {
    fn from(value: u64) -> Self {
        Fp61::new(value)
    }
}

impl From<u32> for Fp61 {
    fn from(value: u32) -> Self {
        Fp61(value as u64)
    }
}

impl From<i64> for Fp61 {
    fn from(value: i64) -> Self {
        Fp61::from_i64(value)
    }
}

impl Add for Fp61 {
    type Output = Fp61;

    #[inline]
    fn add(self, rhs: Fp61) -> Fp61 {
        let mut s = self.0 + rhs.0;
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp61(s)
    }
}

impl AddAssign for Fp61 {
    #[inline]
    fn add_assign(&mut self, rhs: Fp61) {
        *self = *self + rhs;
    }
}

impl Sub for Fp61 {
    type Output = Fp61;

    #[inline]
    fn sub(self, rhs: Fp61) -> Fp61 {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp61(s)
    }
}

impl SubAssign for Fp61 {
    #[inline]
    fn sub_assign(&mut self, rhs: Fp61) {
        *self = *self - rhs;
    }
}

impl Mul for Fp61 {
    type Output = Fp61;

    #[inline]
    fn mul(self, rhs: Fp61) -> Fp61 {
        Fp61(Fp61::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl MulAssign for Fp61 {
    #[inline]
    fn mul_assign(&mut self, rhs: Fp61) {
        *self = *self * rhs;
    }
}

impl Neg for Fp61 {
    type Output = Fp61;

    #[inline]
    fn neg(self) -> Fp61 {
        if self.0 == 0 {
            self
        } else {
            Fp61(MODULUS - self.0)
        }
    }
}

impl Div for Fp61 {
    type Output = Fp61;

    /// # Panics
    ///
    /// Panics if `rhs` is zero. Use [`Scalar::div`] for a fallible variant.
    #[inline]
    fn div(self, rhs: Fp61) -> Fp61 {
        Scalar::div(self, rhs).expect("division by zero in GF(2^61-1)")
    }
}

impl Sum for Fp61 {
    fn sum<I: Iterator<Item = Fp61>>(iter: I) -> Fp61 {
        iter.fold(Fp61(0), |a, b| a + b)
    }
}

impl Product for Fp61 {
    fn product<I: Iterator<Item = Fp61>>(iter: I) -> Fp61 {
        iter.fold(Fp61(1), |a, b| a * b)
    }
}

impl Scalar for Fp61 {
    #[inline]
    fn zero() -> Self {
        Fp61(0)
    }

    #[inline]
    fn one() -> Self {
        Fp61(1)
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline]
    fn neg(self) -> Self {
        -self
    }

    #[inline]
    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: a^(p-2) = a^(-1) mod p.
            Some(self.pow(MODULUS - 2))
        }
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn pivot_weight(&self) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            1.0
        }
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Uniform over [0, p): rejection-free because gen_range is exact.
        Fp61(rng.gen_range(0..MODULUS))
    }

    // Lazy-reduction kernel overrides. See the `kernels` module docs for
    // the headroom argument; the block length is [`LAZY_BLOCK`].

    fn dot_slices(a: &[Self], b: &[Self]) -> Self {
        debug_assert_eq!(a.len(), b.len());
        // Runtime SIMD dispatch: both paths produce the canonical
        // representative, so this is a speed decision only (bit-identical
        // results either way; see `crate::simd` docs).
        if a.len() >= crate::simd::MIN_DOT_LEN && crate::simd::active() {
            if let Some(v) = crate::simd::dot_fp61(a, b) {
                return v;
            }
        }
        Fp61::dot_slices_scalar(a, b)
    }

    fn dot_slices_x4(a: &[Self], b: [&[Self]; 4]) -> [Self; 4] {
        // Same dispatch rule as `dot_slices`; the 4-column microkernel
        // shares the `a` loads and runs four accumulator chains, but
        // each column's arithmetic is identical to a single dot, so the
        // result is bit-identical either way.
        if a.len() >= crate::simd::MIN_DOT_LEN && crate::simd::active() {
            if let Some(v) = crate::simd::dot4_fp61(a, b) {
                return v;
            }
        }
        [
            Fp61::dot_slices(a, b[0]),
            Fp61::dot_slices(a, b[1]),
            Fp61::dot_slices(a, b[2]),
            Fp61::dot_slices(a, b[3]),
        ]
    }

    fn fused_muladd(acc: &mut [Self], factor: Self, rhs: &[Self]) {
        debug_assert_eq!(acc.len(), rhs.len());
        let f = factor.0 as u128;
        for (o, &r) in acc.iter_mut().zip(rhs) {
            // o + f·r ≤ (p−1) + (p−1)² < 2^122: one reduce128, no
            // intermediate canonicalization of the product.
            o.0 = Fp61::reduce128(o.0 as u128 + f * r.0 as u128);
        }
    }

    fn fused_submul(target: &mut [Self], factor: Self, source: &[Self]) {
        debug_assert_eq!(target.len(), source.len());
        let f = factor.0 as u128;
        for (t, &s) in target.iter_mut().zip(source) {
            // t − f·s ≡ t + (FOLD_ZERO − f·s) (mod p); the sum stays below
            // 2^122 + 2^61, inside reduce128's domain.
            t.0 = Fp61::reduce128(t.0 as u128 + (FOLD_ZERO - f * s.0 as u128));
        }
    }

    #[inline]
    fn prefers_dot_matmul() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn canonical_reduction() {
        assert_eq!(Fp61::new(MODULUS).residue(), 0);
        assert_eq!(Fp61::new(MODULUS + 5).residue(), 5);
        assert_eq!(Fp61::new(u64::MAX).residue(), u64::MAX % MODULUS);
    }

    #[test]
    fn from_i64_handles_negatives() {
        assert_eq!(Fp61::from_i64(-1), -Fp61::new(1));
        assert_eq!(Fp61::from_i64(-1).residue(), MODULUS - 1);
        assert_eq!(Fp61::from_i64(42).residue(), 42);
        assert_eq!(Fp61::from_i64(i64::MIN), -Fp61::new(1u64 << 63));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Fp61::new(MODULUS - 3);
        let b = Fp61::new(10);
        assert_eq!((a + b).residue(), 7);
        assert_eq!(a + b - b, a);
        assert_eq!((Fp61::new(3) - Fp61::new(5)).residue(), MODULUS - 2);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = <Fp61 as Scalar>::sample(&mut rng);
            let b = <Fp61 as Scalar>::sample(&mut rng);
            let want = ((a.residue() as u128 * b.residue() as u128) % MODULUS as u128) as u64;
            assert_eq!((a * b).residue(), want);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = <Fp61 as Scalar>::sample(&mut rng);
            assert_eq!((a + (-a)).residue(), 0);
        }
        assert_eq!((-Fp61::new(0)).residue(), 0);
    }

    #[test]
    fn inverse_is_multiplicative_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = <Fp61 as Scalar>::sample(&mut rng);
            if Scalar::is_zero(&a) {
                continue;
            }
            let inv = Scalar::inv(a).unwrap();
            assert_eq!(a * inv, Fp61::new(1));
        }
        assert_eq!(Scalar::inv(Fp61::new(0)), None);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(Fp61::new(2).pow(10).residue(), 1024);
        assert_eq!(Fp61::new(5).pow(0).residue(), 1);
        assert_eq!(Fp61::new(0).pow(0).residue(), 1); // convention: 0^0 = 1
                                                      // Fermat's little theorem: a^(p-1) = 1.
        assert_eq!(Fp61::new(123456789).pow(MODULUS - 1).residue(), 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Fp61::new(1) / Fp61::new(0);
    }

    #[test]
    fn div_operator_matches_inv() {
        let a = Fp61::new(123);
        let b = Fp61::new(456);
        assert_eq!(a / b, a * Scalar::inv(b).unwrap());
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Fp61::new(1), Fp61::new(2), Fp61::new(3)];
        assert_eq!(xs.iter().copied().sum::<Fp61>().residue(), 6);
        assert_eq!(xs.iter().copied().product::<Fp61>().residue(), 6);
        let empty: [Fp61; 0] = [];
        assert_eq!(empty.iter().copied().sum::<Fp61>().residue(), 0);
        assert_eq!(empty.iter().copied().product::<Fp61>().residue(), 1);
    }

    #[test]
    fn sample_is_uniform_ish() {
        // Crude sanity: mean of residues near p/2 for a large sample.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| <Fp61 as Scalar>::sample(&mut rng).residue() as f64)
            .sum::<f64>()
            / n as f64;
        let half = MODULUS as f64 / 2.0;
        assert!((mean - half).abs() < half * 0.05, "mean {mean} vs {half}");
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Fp61::new(42).to_string(), "42");
        assert_eq!(format!("{:?}", Fp61::new(42)), "Fp61(42)");
    }

    /// Naive one-reduction-per-multiply dot used as the reference for the
    /// lazy kernel.
    fn dot_reference(a: &[Fp61], b: &[Fp61]) -> Fp61 {
        a.iter()
            .zip(b)
            .fold(Fp61::new(0), |acc, (&x, &y)| acc + x * y)
    }

    #[test]
    fn lazy_dot_matches_reference_at_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [
            0,
            1,
            LAZY_BLOCK - 1,
            LAZY_BLOCK,
            LAZY_BLOCK + 1,
            2 * LAZY_BLOCK,
            2 * LAZY_BLOCK + 1,
            1000,
        ] {
            let a: Vec<Fp61> = (0..n).map(|_| <Fp61 as Scalar>::sample(&mut rng)).collect();
            let b: Vec<Fp61> = (0..n).map(|_| <Fp61 as Scalar>::sample(&mut rng)).collect();
            assert_eq!(
                <Fp61 as Scalar>::dot_slices(&a, &b),
                dot_reference(&a, &b),
                "length {n}"
            );
        }
    }

    #[test]
    fn lazy_dot_survives_maximum_unreduced_accumulation() {
        // The overflow boundary: LAZY_BLOCK all-max products is the largest
        // sum the kernel ever holds unreduced. Check it, its neighbors, and
        // a multi-block all-max run against u128 reference arithmetic.
        let max = Fp61::new(MODULUS - 1);
        for n in [LAZY_BLOCK, LAZY_BLOCK + 1, 4 * LAZY_BLOCK + 7] {
            let a = vec![max; n];
            let want = {
                let sq = ((MODULUS - 1) as u128 * (MODULUS - 1) as u128) % MODULUS as u128;
                Fp61::new(((sq * n as u128) % MODULUS as u128) as u64)
            };
            assert_eq!(<Fp61 as Scalar>::dot_slices(&a, &a), want, "length {n}");
            assert_eq!(dot_reference(&a, &a), want, "reference length {n}");
        }
    }

    #[test]
    fn fused_muladd_and_submul_match_scalar_ops() {
        let mut rng = StdRng::seed_from_u64(9);
        let max = Fp61::new(MODULUS - 1);
        for factor in [
            Fp61::new(0),
            Fp61::new(1),
            max,
            <Fp61 as Scalar>::sample(&mut rng),
        ] {
            let target: Vec<Fp61> = (0..100)
                .map(|i| {
                    if i == 0 {
                        max
                    } else {
                        <Fp61 as Scalar>::sample(&mut rng)
                    }
                })
                .collect();
            let source: Vec<Fp61> = (0..100)
                .map(|i| {
                    if i == 0 {
                        max
                    } else {
                        <Fp61 as Scalar>::sample(&mut rng)
                    }
                })
                .collect();

            let mut add_got = target.clone();
            <Fp61 as Scalar>::fused_muladd(&mut add_got, factor, &source);
            let mut sub_got = target.clone();
            <Fp61 as Scalar>::fused_submul(&mut sub_got, factor, &source);
            for i in 0..target.len() {
                assert_eq!(add_got[i], target[i] + factor * source[i]);
                assert_eq!(sub_got[i], target[i] - factor * source[i]);
            }
        }
    }

    #[test]
    fn reduce_wide_handles_full_u128_range() {
        assert_eq!(Fp61::reduce_wide(0), 0);
        assert_eq!(Fp61::reduce_wide(MODULUS as u128), 0);
        assert_eq!(
            Fp61::reduce_wide(u128::MAX),
            (u128::MAX % MODULUS as u128) as u64
        );
        let x = 63u128 * ((MODULUS - 1) as u128 * (MODULUS - 1) as u128) + (MODULUS - 1) as u128;
        assert_eq!(Fp61::reduce_wide(x), (x % MODULUS as u128) as u64);
    }
}
