//! The Mersenne prime field GF(2⁶¹ − 1).
//!
//! Random vectors drawn uniformly from a finite field are what make the
//! paper's security guarantee *information-theoretic*: conditioned on the
//! coded rows a single device observes, every data matrix remains equally
//! likely (Definition 2, `H(A | B_j T) = H(A)`). 2⁶¹ − 1 is chosen because
//! Mersenne reduction keeps multiplication branch-free and fast, while the
//! field is comfortably larger than any payload precision we need.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scalar::Scalar;

/// The field modulus `p = 2^61 - 1` (a Mersenne prime).
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of GF(2⁶¹ − 1).
///
/// The canonical representative is always kept in `[0, p)`. Arithmetic
/// operators (`+`, `-`, `*`, `/`) are implemented on values; `/` panics on
/// division by zero, while the [`Scalar::inv`]/[`Scalar::div`] trait methods
/// return `None` instead.
///
/// # Example
///
/// ```
/// use scec_linalg::Fp61;
///
/// let a = Fp61::new(7);
/// let b = Fp61::new(3);
/// assert_eq!((a * b).residue(), 21);
/// assert_eq!((a / b) * b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fp61(u64);

impl Fp61 {
    /// Creates a field element from any `u64`, reducing modulo `p`.
    #[inline]
    pub fn new(value: u64) -> Self {
        Fp61(value % MODULUS)
    }

    /// Creates a field element from a signed integer, mapping negatives to
    /// their additive-inverse representatives.
    #[inline]
    pub fn from_i64(value: i64) -> Self {
        if value >= 0 {
            Fp61::new(value as u64)
        } else {
            -Fp61::new(value.unsigned_abs())
        }
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn residue(self) -> u64 {
        self.0
    }

    /// Fast reduction of a 128-bit product into `[0, p)` using the Mersenne
    /// structure of the modulus: `x mod (2^61 - 1)` folds the high bits onto
    /// the low bits.
    #[inline]
    fn reduce128(x: u128) -> u64 {
        let lo = (x as u64) & MODULUS;
        let hi = (x >> 61) as u64;
        let mut s = lo + hi;
        if s >= MODULUS {
            s -= MODULUS;
        }
        // One fold suffices for products of canonical representatives:
        // (p-1)^2 < 2^122, so hi < 2^61 and lo + hi < 2^62 < 2p + p.
        if s >= MODULUS {
            s -= MODULUS;
        }
        s
    }

    /// Modular exponentiation by squaring.
    #[inline]
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Fp61(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }
}

impl fmt::Debug for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp61({})", self.0)
    }
}

impl fmt::Display for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Fp61 {
    fn from(value: u64) -> Self {
        Fp61::new(value)
    }
}

impl From<u32> for Fp61 {
    fn from(value: u32) -> Self {
        Fp61(value as u64)
    }
}

impl From<i64> for Fp61 {
    fn from(value: i64) -> Self {
        Fp61::from_i64(value)
    }
}

impl Add for Fp61 {
    type Output = Fp61;

    #[inline]
    fn add(self, rhs: Fp61) -> Fp61 {
        let mut s = self.0 + rhs.0;
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp61(s)
    }
}

impl AddAssign for Fp61 {
    #[inline]
    fn add_assign(&mut self, rhs: Fp61) {
        *self = *self + rhs;
    }
}

impl Sub for Fp61 {
    type Output = Fp61;

    #[inline]
    fn sub(self, rhs: Fp61) -> Fp61 {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp61(s)
    }
}

impl SubAssign for Fp61 {
    #[inline]
    fn sub_assign(&mut self, rhs: Fp61) {
        *self = *self - rhs;
    }
}

impl Mul for Fp61 {
    type Output = Fp61;

    #[inline]
    fn mul(self, rhs: Fp61) -> Fp61 {
        Fp61(Fp61::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl MulAssign for Fp61 {
    #[inline]
    fn mul_assign(&mut self, rhs: Fp61) {
        *self = *self * rhs;
    }
}

impl Neg for Fp61 {
    type Output = Fp61;

    #[inline]
    fn neg(self) -> Fp61 {
        if self.0 == 0 {
            self
        } else {
            Fp61(MODULUS - self.0)
        }
    }
}

impl Div for Fp61 {
    type Output = Fp61;

    /// # Panics
    ///
    /// Panics if `rhs` is zero. Use [`Scalar::div`] for a fallible variant.
    #[inline]
    fn div(self, rhs: Fp61) -> Fp61 {
        Scalar::div(self, rhs).expect("division by zero in GF(2^61-1)")
    }
}

impl Sum for Fp61 {
    fn sum<I: Iterator<Item = Fp61>>(iter: I) -> Fp61 {
        iter.fold(Fp61(0), |a, b| a + b)
    }
}

impl Product for Fp61 {
    fn product<I: Iterator<Item = Fp61>>(iter: I) -> Fp61 {
        iter.fold(Fp61(1), |a, b| a * b)
    }
}

impl Scalar for Fp61 {
    #[inline]
    fn zero() -> Self {
        Fp61(0)
    }

    #[inline]
    fn one() -> Self {
        Fp61(1)
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline]
    fn neg(self) -> Self {
        -self
    }

    #[inline]
    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: a^(p-2) = a^(-1) mod p.
            Some(self.pow(MODULUS - 2))
        }
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn pivot_weight(&self) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            1.0
        }
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Uniform over [0, p): rejection-free because gen_range is exact.
        Fp61(rng.gen_range(0..MODULUS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn canonical_reduction() {
        assert_eq!(Fp61::new(MODULUS).residue(), 0);
        assert_eq!(Fp61::new(MODULUS + 5).residue(), 5);
        assert_eq!(Fp61::new(u64::MAX).residue(), u64::MAX % MODULUS);
    }

    #[test]
    fn from_i64_handles_negatives() {
        assert_eq!(Fp61::from_i64(-1), -Fp61::new(1));
        assert_eq!(Fp61::from_i64(-1).residue(), MODULUS - 1);
        assert_eq!(Fp61::from_i64(42).residue(), 42);
        assert_eq!(Fp61::from_i64(i64::MIN), -Fp61::new(1u64 << 63));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Fp61::new(MODULUS - 3);
        let b = Fp61::new(10);
        assert_eq!((a + b).residue(), 7);
        assert_eq!(a + b - b, a);
        assert_eq!((Fp61::new(3) - Fp61::new(5)).residue(), MODULUS - 2);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = <Fp61 as Scalar>::sample(&mut rng);
            let b = <Fp61 as Scalar>::sample(&mut rng);
            let want = ((a.residue() as u128 * b.residue() as u128) % MODULUS as u128) as u64;
            assert_eq!((a * b).residue(), want);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = <Fp61 as Scalar>::sample(&mut rng);
            assert_eq!((a + (-a)).residue(), 0);
        }
        assert_eq!((-Fp61::new(0)).residue(), 0);
    }

    #[test]
    fn inverse_is_multiplicative_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = <Fp61 as Scalar>::sample(&mut rng);
            if Scalar::is_zero(&a) {
                continue;
            }
            let inv = Scalar::inv(a).unwrap();
            assert_eq!(a * inv, Fp61::new(1));
        }
        assert_eq!(Scalar::inv(Fp61::new(0)), None);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(Fp61::new(2).pow(10).residue(), 1024);
        assert_eq!(Fp61::new(5).pow(0).residue(), 1);
        assert_eq!(Fp61::new(0).pow(0).residue(), 1); // convention: 0^0 = 1
                                                      // Fermat's little theorem: a^(p-1) = 1.
        assert_eq!(Fp61::new(123456789).pow(MODULUS - 1).residue(), 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Fp61::new(1) / Fp61::new(0);
    }

    #[test]
    fn div_operator_matches_inv() {
        let a = Fp61::new(123);
        let b = Fp61::new(456);
        assert_eq!(a / b, a * Scalar::inv(b).unwrap());
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Fp61::new(1), Fp61::new(2), Fp61::new(3)];
        assert_eq!(xs.iter().copied().sum::<Fp61>().residue(), 6);
        assert_eq!(xs.iter().copied().product::<Fp61>().residue(), 6);
        let empty: [Fp61; 0] = [];
        assert_eq!(empty.iter().copied().sum::<Fp61>().residue(), 0);
        assert_eq!(empty.iter().copied().product::<Fp61>().residue(), 1);
    }

    #[test]
    fn sample_is_uniform_ish() {
        // Crude sanity: mean of residues near p/2 for a large sample.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| <Fp61 as Scalar>::sample(&mut rng).residue() as f64)
            .sum::<f64>()
            / n as f64;
        let half = MODULUS as f64 / 2.0;
        assert!((mean - half).abs() < half * 0.05, "mean {mean} vs {half}");
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Fp61::new(42).to_string(), "42");
        assert_eq!(format!("{:?}", Fp61::new(42)), "Fp61(42)");
    }
}
