//! Performance kernels: lazy-reduction arithmetic, cache blocking, and
//! row-band parallelism for the coded-computation hot paths.
//!
//! # Lazy reduction over GF(2⁶¹ − 1)
//!
//! A naive dot product over [`Fp61`](crate::Fp61) pays one Mersenne
//! reduction *per multiply*. The lazy kernels exploit the headroom a
//! 61-bit modulus leaves in 128-bit arithmetic: every product of canonical
//! representatives is at most `(p−1)² < 2^122`, so a `u128` accumulator
//! can absorb [`LAZY_BLOCK`](crate::fp::LAZY_BLOCK)` = 63` products plus a
//! folded carry (`< 2^61`) before it can overflow:
//!
//! ```text
//! 63·(p−1)² + (p−1)  <  63·2^122 + 2^61  =  2^128 − 2^122 + 2^61  <  2^128
//! ```
//!
//! That turns one reduction per multiply into one per 63 multiplies. The
//! dispatch point is the [`Scalar`] trait itself — [`Scalar::dot_slices`],
//! [`Scalar::fused_muladd`] and [`Scalar::fused_submul`] have naive
//! default bodies and `Fp61` overrides them — so generic code (`f64`,
//! [`FpGeneric`](crate::FpGeneric)) is untouched while `Fp61` gets the
//! fast path everywhere.
//!
//! # Parallelism
//!
//! The `parallel` cargo feature (on by default) lets the large kernels
//! fan work out across contiguous row bands with `std::thread::scope`.
//! (A `rayon` pool would be the conventional choice; this workspace
//! builds in offline environments where no external crates beyond the
//! seed set are available, so the band scheduler is hand-rolled on the
//! standard library — same shape, zero dependencies.) Work smaller than
//! [`PAR_THRESHOLD`] scalar multiply-adds always runs serially, and the
//! band count is capped by `std::thread::available_parallelism`, so the
//! kernels degrade gracefully to the serial path on a single core or with
//! `--no-default-features`.
//!
//! Banding never changes results: each output row is computed by exactly
//! the same instruction sequence as in the serial path, so `f64` results
//! are bitwise identical and finite-field results are exact either way.
//!
//! # Reference kernels
//!
//! [`matmul_naive`], [`matvec_naive`], [`dot_naive`] and
//! [`transpose_naive`] preserve the pre-kernel implementations. They are
//! the ground truth for the agreement tests and the baseline for the
//! `linalg_kernels` bench and `scec bench` trajectory.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// Minimum number of scalar multiply-adds before a kernel considers
/// splitting work across threads. Below this, thread spawn/join overhead
/// dwarfs the arithmetic.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// Upper bound on worker threads: `available_parallelism`, or 1 when the
/// `parallel` feature is disabled.
///
/// The core count is detected once and cached: `available_parallelism`
/// is a syscall, and the un-cached version showed up as a measurable
/// regression on single-core hosts (BENCH_6: `fp61_matmul_parallel`
/// 0.745 ns/op vs 0.736 for the serial-pinned kernel, on a machine where
/// the parallel path never spawns a thread). With the cache, the
/// `threads == 1` degradation path costs one relaxed atomic load.
pub fn max_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Number of threads a kernel performing `work` scalar multiply-adds
/// should use: 1 below [`PAR_THRESHOLD`], otherwise enough bands to give
/// each thread at least one threshold's worth of work, capped by
/// [`max_threads`].
pub fn threads_for(work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    max_threads().min(work / PAR_THRESHOLD).max(1)
}

/// Splits `0..n` into `threads` contiguous bands of near-equal size.
/// Returns `(start, end)` pairs; empty bands are skipped.
fn bands(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len > 0 {
            out.push((start, start + len));
            start += len;
        }
    }
    out
}

/// Maps `f` over `0..n`, collecting results in order, fanning bands out
/// across up to `threads` scoped threads.
///
/// With `threads <= 1` (or a single band) this is a plain serial loop —
/// the degradation path for one core or `--no-default-features`.
pub fn par_map_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Single-core / small-work early exit before any band bookkeeping:
    // on one core (or below the per-band threshold in the caller) the
    // spawn path must cost nothing.
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let bands = bands(n, threads);
    if bands.len() <= 1 {
        return (0..n).map(f).collect();
    }
    #[cfg(feature = "parallel")]
    {
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(bands.len());
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = bands
                .iter()
                .map(|&(s, e)| scope.spawn(move || (s..e).map(f).collect::<Vec<T>>()))
                .collect();
            for h in handles {
                chunks.push(h.join().expect("kernel worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        (0..n).map(f).collect()
    }
}

/// Runs `f(first_row, band)` over disjoint row bands of a row-major
/// buffer, in parallel across up to `threads` scoped threads.
///
/// `data.len()` must be a multiple of `cols`; each band is a contiguous
/// run of whole rows, so workers never alias.
pub fn for_row_bands<F, W>(data: &mut [F], cols: usize, threads: usize, f: W)
where
    F: Send,
    W: Fn(usize, &mut [F]) + Sync,
{
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    // Same single-core early exit as `par_map_collect`.
    if threads <= 1 {
        f(0, data);
        return;
    }
    let rows = data.len() / cols;
    let bands = bands(rows, threads);
    if bands.len() <= 1 {
        f(0, data);
        return;
    }
    #[cfg(feature = "parallel")]
    {
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut handles = Vec::with_capacity(bands.len());
            for &(s, e) in &bands {
                let (band, tail) = rest.split_at_mut((e - s) * cols);
                rest = tail;
                let f = &f;
                handles.push(scope.spawn(move || f(s, band)));
            }
            for h in handles {
                h.join().expect("kernel worker panicked");
            }
        });
    }
    #[cfg(not(feature = "parallel"))]
    {
        f(0, data);
    }
}

/// Edge length of the square tiles used by the blocked transpose.
///
/// Picked empirically from the `fp61_transpose_tile_sweep` bench shapes
/// (see `crates/bench/benches/linalg_kernels.rs`): on the reference
/// hardware a 16×16 tile of `u64`-sized entries (2 KiB read + 2 KiB
/// write window) beat tiles 8/32/64/128 at 512², 1024², and 2048²
/// (1.66/1.68/5.71 ns per element vs 1.70/2.15/5.83 for the previous
/// tile of 32), and the write-contiguous inner loop in
/// [`transpose_blocked`] beat the old read-contiguous order (which
/// measured 4.78 ns/op at 1024² in `BENCH_2.json`).
///
/// Re-swept after the `BENCH_6.json` regression to 1.58 ns/op (via the
/// in-tree `transpose_tile_sweep_report` test): tile 16 still wins —
/// 1.67/1.76/4.67 ns per element at 512²/1024²/2048² vs 1.67/1.83/4.76
/// for tile 8 and 1.88/2.34/4.91 for tile 32 — so the regression was
/// measurement-environment drift, not a mistuned tile; the constant
/// stands.
pub(crate) const TRANSPOSE_TILE: usize = 16;

/// Tile-blocked transpose with a caller-chosen tile edge.
///
/// Walks square `tile`×`tile` blocks so both the read and the write
/// window stay cache-resident regardless of matrix shape. Within a block
/// the inner loop walks *output* rows, making the writes contiguous and
/// the (prefetch-friendlier) strided accesses reads. `tile == 0` is
/// treated as an untiled single block. [`Matrix::transpose`] delegates
/// here with [`TRANSPOSE_TILE`]; the bench sweep calls this directly to
/// compare tile sizes.
pub fn transpose_blocked<F: Scalar>(m: &Matrix<F>, tile: usize) -> Matrix<F> {
    let (rows, cols) = m.shape();
    let tile = if tile == 0 {
        rows.max(cols).max(1)
    } else {
        tile
    };
    let mut t = Matrix::zeros(cols, rows);
    let src = m.flat();
    let dst = t.flat_mut();
    for bj in (0..cols).step_by(tile) {
        let bj_end = (bj + tile).min(cols);
        for bi in (0..rows).step_by(tile) {
            let bi_end = (bi + tile).min(rows);
            for j in bj..bj_end {
                let out_row = &mut dst[j * rows..j * rows + rows];
                for i in bi..bi_end {
                    out_row[i] = src[i * cols + j];
                }
            }
        }
    }
    t
}

/// Reference matrix product: the pre-kernel i-k-j triple loop with one
/// reduction per multiply. Kept as the agreement-test oracle and the
/// bench baseline.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `a.ncols() != b.nrows()`.
pub fn matmul_naive<F: Scalar>(a: &Matrix<F>, b: &Matrix<F>) -> Result<Matrix<F>> {
    if a.ncols() != b.nrows() {
        return Err(Error::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (rows, inner, cols) = (a.nrows(), a.ncols(), b.ncols());
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for k in 0..inner {
            let f = a.at(i, k);
            if f.is_zero() {
                continue;
            }
            let rrow = b.row(k);
            let orow: &mut [F] = out.row_mut(i);
            for (o, &v) in orow.iter_mut().zip(rrow) {
                *o = o.add(f.mul(v));
            }
        }
    }
    Ok(out)
}

/// Reference matrix–vector product (per-element `add(mul(..))`).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `a.ncols() != x.len()`.
pub fn matvec_naive<F: Scalar>(a: &Matrix<F>, x: &Vector<F>) -> Result<Vector<F>> {
    if a.ncols() != x.len() {
        return Err(Error::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut out = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        out.push(dot_naive(a.row(i), x.as_slice()));
    }
    Ok(Vector::from_vec(out))
}

/// Reference inner product (per-element `add(mul(..))`).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn dot_naive<F: Scalar>(a: &[F], b: &[F]) -> F {
    assert_eq!(a.len(), b.len(), "dot_naive length mismatch");
    a.iter()
        .zip(b)
        .fold(F::zero(), |acc, (&x, &y)| acc.add(x.mul(y)))
}

/// Reference strided transpose (the pre-kernel column-walking loop).
pub fn transpose_naive<F: Scalar>(m: &Matrix<F>) -> Matrix<F> {
    let (rows, cols) = m.shape();
    let mut t = Matrix::zeros(cols, rows);
    for i in 0..rows {
        for j in 0..cols {
            let v = m.at(i, j);
            *t.entry_mut(j, i) = v;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bands_cover_range_without_overlap() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 200] {
                let bs = bands(n, threads);
                let mut next = 0;
                for (s, e) in bs {
                    assert_eq!(s, next);
                    assert!(e > s);
                    next = e;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn threads_for_respects_threshold_and_cap() {
        assert_eq!(threads_for(0), 1);
        assert_eq!(threads_for(PAR_THRESHOLD - 1), 1);
        assert!(threads_for(PAR_THRESHOLD) >= 1);
        assert!(threads_for(usize::MAX / 2) <= max_threads());
    }

    #[test]
    fn par_map_collect_preserves_order() {
        for threads in [1usize, 2, 5] {
            let got = par_map_collect(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(par_map_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    fn for_row_bands_touches_every_row_once() {
        for threads in [1usize, 2, 3, 7] {
            let mut data = vec![0usize; 9 * 4];
            let counter = AtomicUsize::new(0);
            for_row_bands(&mut data, 4, threads, |first_row, band| {
                counter.fetch_add(band.len() / 4, Ordering::SeqCst);
                for (r, row) in band.chunks_mut(4).enumerate() {
                    for v in row.iter_mut() {
                        *v = first_row + r + 1;
                    }
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 9);
            for r in 0..9 {
                assert!(data[r * 4..(r + 1) * 4].iter().all(|&v| v == r + 1));
            }
        }
        // Degenerate shapes are no-ops.
        for_row_bands(&mut [] as &mut [usize], 4, 2, |_, _| panic!("no rows"));
        for_row_bands(&mut [1usize], 0, 2, |_, _| panic!("no cols"));
    }

    /// Tile-size sweep for [`transpose_blocked`], ignored by default:
    /// `cargo test --release -p scec-linalg -- --ignored tile_sweep
    /// --nocapture` prints ns/element per tile per shape. The winner is
    /// recorded in the [`TRANSPOSE_TILE`] doc comment and DESIGN.md.
    #[test]
    #[ignore]
    fn transpose_tile_sweep_report() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [512usize, 1024, 2048] {
            let m = Matrix::<Fp61>::random(n, n, &mut rng);
            for tile in [8usize, 16, 24, 32, 64, 128] {
                let reps = (3usize).max(64 * 1024 * 1024 / (n * n));
                // Warmup + timed reps.
                let _ = transpose_blocked(&m, tile);
                let start = std::time::Instant::now();
                for _ in 0..reps {
                    std::hint::black_box(transpose_blocked(std::hint::black_box(&m), tile));
                }
                let ns = start.elapsed().as_nanos() as f64 / (reps * n * n) as f64;
                println!("transpose {n}x{n} tile {tile:>3}: {ns:.3} ns/elem");
            }
        }
    }

    #[test]
    fn naive_kernels_agree_with_routed_paths() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = Matrix::<Fp61>::random(17, 23, &mut rng);
        let b = Matrix::<Fp61>::random(23, 11, &mut rng);
        let x = Vector::<Fp61>::random(23, &mut rng);
        assert_eq!(matmul_naive(&a, &b).unwrap(), a.matmul(&b).unwrap());
        assert_eq!(matvec_naive(&a, &x).unwrap(), a.matvec(&x).unwrap());
        assert_eq!(transpose_naive(&a), a.transpose());
        assert!(matmul_naive(&a, &a).is_err());
        assert!(matvec_naive(&b, &x).is_err());
    }
}
