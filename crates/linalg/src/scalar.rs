//! The [`Scalar`] field abstraction.
//!
//! All coding and decoding in the SCEC workspace is generic over a field.
//! Two implementations ship with this crate:
//!
//! * [`f64`] — numerical mode. Fast and convenient for machine-learning
//!   payloads, but only *algebraically* secure: the span-based security
//!   condition holds, while entropy-based information-theoretic security is
//!   not well defined over the reals.
//! * [`Fp61`](crate::fp::Fp61) — the Mersenne prime field GF(2⁶¹ − 1).
//!   Uniform random field elements give exact information-theoretic
//!   security in the sense of the paper's Definition 2.

use std::fmt::Debug;

use rand::Rng;

/// An element of a field, as required by the coded-computation pipeline.
///
/// The trait deliberately exposes *total* operations plus a fallible
/// [`inv`](Scalar::inv); division by zero is the only failure mode of field
/// arithmetic and is surfaced as `None` rather than a panic so that callers
/// can map it to [`Error::DivisionByZero`](crate::Error::DivisionByZero).
///
/// # Numerical caveat
///
/// For `f64` the field axioms hold only approximately. [`is_zero`]
/// consequently applies a tolerance, and Gaussian elimination uses
/// [`pivot_weight`] for partial pivoting. Exact fields return `1.0` for any
/// non-zero element so pivot choice degenerates to "first non-zero", which
/// is correct there.
///
/// [`is_zero`]: Scalar::is_zero
/// [`pivot_weight`]: Scalar::pivot_weight
pub trait Scalar: Copy + Clone + Debug + PartialEq + Send + Sync + 'static {
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Field addition.
    fn add(self, rhs: Self) -> Self;

    /// Field subtraction.
    fn sub(self, rhs: Self) -> Self;

    /// Field multiplication.
    fn mul(self, rhs: Self) -> Self;

    /// Additive inverse.
    fn neg(self) -> Self;

    /// Multiplicative inverse, or `None` for the zero element.
    fn inv(self) -> Option<Self>;

    /// Whether this element is (numerically) zero.
    fn is_zero(&self) -> bool;

    /// Weight used to select pivots during Gaussian elimination.
    ///
    /// Must be `0.0` exactly when [`is_zero`](Scalar::is_zero) is true and
    /// positive otherwise. For `f64` this is `|x|` (partial pivoting); exact
    /// fields return `1.0` for every non-zero element.
    fn pivot_weight(&self) -> f64;

    /// Draws an element uniformly at random (for exact fields) or from a
    /// standard uniform distribution on `[0, 1)` scaled to a generic
    /// "random payload" (for `f64`).
    ///
    /// Random elements are what the cloud mixes into the data matrix to blind
    /// it; for exact information-theoretic security they must be uniform
    /// over the field, which [`Fp61`](crate::fp::Fp61) guarantees.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// Field division: `self / rhs`, or `None` when `rhs` is zero.
    fn div(self, rhs: Self) -> Option<Self> {
        rhs.inv().map(|i| self.mul(i))
    }

    // ------------------------------------------------------------------
    // Fused slice kernels.
    //
    // Stable Rust has no impl specialization, so the kernel dispatch point
    // is the trait itself: the default bodies below are the naive
    // reference (one reduction per multiply), and fields whose structure
    // admits something faster override them. `Fp61` overrides all three
    // with lazy-reduction code (see `kernels` module docs for the
    // invariant). Every hot path in this crate — `matmul`, `matvec`,
    // Gaussian elimination, `Vector::dot` — is written against these
    // hooks, so a new field gets correct (if unspectacular) behavior for
    // free and can opt into a fast path without touching the callers.
    // ------------------------------------------------------------------

    /// Inner product of two equal-length slices.
    ///
    /// The default accumulates `add(mul(..))` element by element; exact
    /// fields with reduction headroom should override with a fused kernel.
    fn dot_slices(a: &[Self], b: &[Self]) -> Self {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .fold(Self::zero(), |acc, (&x, &y)| acc.add(x.mul(y)))
    }

    /// Four inner products sharing the left operand:
    /// `[a·b0, a·b1, a·b2, a·b3]`.
    ///
    /// This is the register-blocked shape of the transpose-then-dot
    /// `matmul`: one row of the left factor against four consecutive
    /// output columns. The default delegates to four [`dot_slices`]
    /// calls; fields with a wide kernel override it to reuse the `a`
    /// loads across columns and run four independent accumulation chains
    /// (see the `simd` module). Overrides must return exactly what the
    /// four per-column calls would.
    fn dot_slices_x4(a: &[Self], b: [&[Self]; 4]) -> [Self; 4] {
        [
            Self::dot_slices(a, b[0]),
            Self::dot_slices(a, b[1]),
            Self::dot_slices(a, b[2]),
            Self::dot_slices(a, b[3]),
        ]
    }

    /// Fused multiply-add over slices: `acc[i] += factor · rhs[i]`.
    ///
    /// This is the inner update of the i-k-j `matmul` loop and of
    /// transposed mat-vec accumulation.
    fn fused_muladd(acc: &mut [Self], factor: Self, rhs: &[Self]) {
        debug_assert_eq!(acc.len(), rhs.len());
        for (o, &r) in acc.iter_mut().zip(rhs) {
            *o = o.add(factor.mul(r));
        }
    }

    /// Fused multiply-subtract over slices: `target[i] -= factor · source[i]`.
    ///
    /// This is the elementary row operation of Gaussian elimination
    /// ([`Matrix::row_axpy`](crate::Matrix::row_axpy) routes here).
    fn fused_submul(target: &mut [Self], factor: Self, source: &[Self]) {
        debug_assert_eq!(target.len(), source.len());
        for (t, &s) in target.iter_mut().zip(source) {
            *t = t.sub(factor.mul(s));
        }
    }

    /// Whether `matmul` should use the transpose-then-dot formulation.
    ///
    /// Fields whose [`dot_slices`](Scalar::dot_slices) amortizes reductions
    /// across the inner dimension (e.g. `Fp61`) answer `true`; for plain
    /// floating point the streaming i-k-j loop is faster, so the default
    /// is `false`.
    fn prefers_dot_matmul() -> bool {
        false
    }
}

/// Tolerance under which an `f64` is considered zero by the elimination
/// routines.
///
/// The coded matrices this crate manipulates are built from 0/1 coefficients
/// and well-conditioned random entries, so a fixed absolute tolerance is
/// adequate; callers with badly scaled data should normalize first.
pub const F64_ZERO_TOL: f64 = 1e-9;

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }

    #[inline]
    fn one() -> Self {
        1.0
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline]
    fn neg(self) -> Self {
        -self
    }

    #[inline]
    fn inv(self) -> Option<Self> {
        if Scalar::is_zero(&self) {
            None
        } else {
            Some(1.0 / self)
        }
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.abs() < F64_ZERO_TOL
    }

    #[inline]
    fn pivot_weight(&self) -> f64 {
        if Scalar::is_zero(self) {
            0.0
        } else {
            self.abs()
        }
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Standard normal via Box–Muller: a widely used blinding
        // distribution for real-valued coded computing.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn f64_field_basics() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(Scalar::add(2.0, 3.0), 5.0);
        assert_eq!(Scalar::sub(2.0, 3.0), -1.0);
        assert_eq!(Scalar::mul(2.0, 3.0), 6.0);
        assert_eq!(Scalar::neg(2.0), -2.0);
        assert_eq!(Scalar::inv(2.0), Some(0.5));
        assert_eq!(Scalar::inv(0.0), None);
        assert_eq!(Scalar::div(6.0, 3.0), Some(2.0));
        assert_eq!(Scalar::div(6.0, 0.0), None);
    }

    #[test]
    fn f64_zero_tolerance() {
        assert!(Scalar::is_zero(&0.0));
        assert!(Scalar::is_zero(&1e-12));
        assert!(!Scalar::is_zero(&1e-6));
        assert_eq!(Scalar::pivot_weight(&0.0), 0.0);
        assert_eq!(Scalar::pivot_weight(&1e-12), 0.0);
        assert_eq!(Scalar::pivot_weight(&-3.0), 3.0);
    }

    #[test]
    fn f64_sample_is_finite_and_varied() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..100)
            .map(|_| <f64 as Scalar>::sample(&mut rng))
            .collect();
        assert!(xs.iter().all(|x| x.is_finite()));
        // Standard-normal samples: mean near 0, not all equal.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.5, "mean {mean} too far from 0");
        assert!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
    }
}
