//! Dense row-major matrices over a generic [`Scalar`] field.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{Axis, Error, Result};
use crate::kernels;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// A dense, row-major matrix over a field `F`.
///
/// `Matrix` is the workhorse of the SCEC workspace: the data matrix `A`, the
/// encoding coefficient matrix `B`, its per-device blocks `B_j`, and the
/// stacked matrix `T = [A; R]` are all `Matrix` values. The API favors
/// explicit, fallible operations ([`Result`]) over panics; only the indexed
/// accessors [`Matrix::get`]/[`Matrix::set`] have panicking `[( )]`-style
/// siblings ([`Matrix::at`]).
///
/// # Example
///
/// ```
/// use scec_linalg::Matrix;
///
/// let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b)?, a);
/// # Ok::<(), scec_linalg::Error>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Scalar> Matrix<F> {
    /// Creates a matrix of the given shape with every entry zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix (the paper's `E_n`).
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = F::one();
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `rows` is empty or the first row has no
    /// columns, and [`Error::ShapeMismatch`] when rows have differing
    /// lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::Empty);
        }
        let cols = rows[0].len();
        let nrows = rows.len();
        let mut data = Vec::with_capacity(nrows * cols);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != cols {
                return Err(Error::ShapeMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, row.len()),
                });
            }
            data.extend(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<F>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::ShapeMismatch {
                op: "from_flat",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix with entries drawn by [`Scalar::sample`].
    ///
    /// This is how the cloud generates the random blinding rows
    /// `R_1, …, R_r`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| F::sample(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows (`V(·)` in the paper's notation).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix has zero rows or columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checked element access.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for indices outside the shape.
    pub fn get(&self, row: usize, col: usize) -> Result<F> {
        self.check_index(row, col)?;
        Ok(self.data[row * self.cols + col])
    }

    /// Unchecked-feel element access.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds. Prefer [`Matrix::get`] in
    /// fallible contexts.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> F {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col]
    }

    /// Checked element mutation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for indices outside the shape.
    pub fn set(&mut self, row: usize, col: usize, value: F) -> Result<()> {
        self.check_index(row, col)?;
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    fn check_index(&self, row: usize, col: usize) -> Result<()> {
        if row >= self.rows {
            return Err(Error::IndexOutOfBounds {
                index: row,
                bound: self.rows,
                axis: Axis::Row,
            });
        }
        if col >= self.cols {
            return Err(Error::IndexOutOfBounds {
                index: col,
                bound: self.cols,
                axis: Axis::Col,
            });
        }
        Ok(())
    }

    /// A borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.nrows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[F] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.nrows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [F] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[F]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Column `j` as an owned [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `j >= self.ncols()`.
    pub fn col(&self, j: usize) -> Vector<F> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        Vector::from_vec(
            (0..self.rows)
                .map(|i| self.data[i * self.cols + j])
                .collect(),
        )
    }

    /// The transpose, computed tile-by-tile.
    ///
    /// A naive transpose walks one side with stride `cols`, missing cache
    /// on every element once the matrix outgrows L1. Delegates to
    /// [`kernels::transpose_blocked`] with the tuned
    /// [`kernels::TRANSPOSE_TILE`] edge, which keeps both the read and the
    /// write window resident regardless of the matrix shape.
    pub fn transpose(&self) -> Matrix<F> {
        kernels::transpose_blocked(self, kernels::TRANSPOSE_TILE)
    }

    /// Matrix product `self · rhs`.
    ///
    /// Routed through the fused kernels: over `Fp61` the inner dimension
    /// is folded with lazy reduction ([`Scalar::dot_slices`]), and large
    /// products are row-banded across threads (see [`kernels`]). Results
    /// are identical to the naive reference — exactly over finite fields,
    /// bitwise over `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `self.ncols() != rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        self.matmul_with_threads(
            rhs,
            kernels::threads_for(self.rows * self.cols * rhs.cols.max(1)),
        )
    }

    /// [`Matrix::matmul`] pinned to the single-threaded kernel path.
    ///
    /// Used by benches to separate the lazy-reduction win from the
    /// parallel win; results are identical to [`Matrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `self.ncols() != rhs.nrows()`.
    pub fn matmul_serial(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        self.matmul_with_threads(rhs, 1)
    }

    fn matmul_with_threads(&self, rhs: &Matrix<F>, threads: usize) -> Result<Matrix<F>> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (rows, inner, cols) = (self.rows, self.cols, rhs.cols);
        crate::ops::record_mults((rows * inner * cols) as u64);
        crate::ops::record_adds((rows * inner.saturating_sub(1) * cols) as u64);
        let mut out = vec![F::zero(); rows * cols];
        if F::prefers_dot_matmul() && inner > 0 {
            // Dot formulation: transpose rhs once (blocked, O(inner·cols))
            // so every output entry is a contiguous dot, letting
            // dot_slices amortize reductions across the inner dimension.
            let rt = rhs.transpose();
            kernels::for_row_bands(&mut out, cols.max(1), threads, |first_row, band| {
                for (local, orow) in band.chunks_mut(cols.max(1)).enumerate() {
                    let arow = self.row(first_row + local);
                    // Register blocking: four output columns share each
                    // `arow` load (and, over Fp61 with SIMD, four
                    // independent accumulator chains). The tail columns
                    // fall back to single dots; results are identical.
                    let mut j = 0;
                    while j + 4 <= cols {
                        let d = F::dot_slices_x4(
                            arow,
                            [rt.row(j), rt.row(j + 1), rt.row(j + 2), rt.row(j + 3)],
                        );
                        orow[j..j + 4].copy_from_slice(&d);
                        j += 4;
                    }
                    for (jj, o) in orow.iter_mut().enumerate().skip(j) {
                        *o = F::dot_slices(arow, rt.row(jj));
                    }
                }
            });
        } else {
            // i-k-j loop order: streams over rhs rows for cache
            // friendliness and skips zero coefficients (the structured 0/1
            // encoding matrices are mostly zeros).
            kernels::for_row_bands(&mut out, cols.max(1), threads, |first_row, band| {
                for (local, orow) in band.chunks_mut(cols.max(1)).enumerate() {
                    let i = first_row + local;
                    for k in 0..inner {
                        let a = self.data[i * inner + k];
                        if a.is_zero() {
                            continue;
                        }
                        F::fused_muladd(orow, a, rhs.row(k));
                    }
                }
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: out,
        })
    }

    /// Matrix–vector product `self · x`, one fused dot per row,
    /// row-banded across threads when large.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `self.ncols() != x.len()`.
    pub fn matvec(&self, x: &Vector<F>) -> Result<Vector<F>> {
        if self.cols != x.len() {
            return Err(Error::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        crate::ops::record_mults((self.rows * self.cols) as u64);
        crate::ops::record_adds((self.rows * self.cols.saturating_sub(1)) as u64);
        let threads = kernels::threads_for(self.rows * self.cols);
        let xs = x.as_slice();
        let out = kernels::par_map_collect(self.rows, threads, |i| F::dot_slices(self.row(i), xs));
        Ok(Vector::from_vec(out))
    }

    /// Transposed matrix–vector product `selfᵀ · u` without materializing
    /// the transpose: accumulates `u[i] · row_i` with the fused kernel.
    ///
    /// This is the Freivalds-key precomputation (`uᵀA`) in `scec-core`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `self.nrows() != u.len()`.
    pub fn tr_matvec(&self, u: &Vector<F>) -> Result<Vector<F>> {
        if self.rows != u.len() {
            return Err(Error::ShapeMismatch {
                op: "tr_matvec",
                lhs: self.shape(),
                rhs: (u.len(), 1),
            });
        }
        crate::ops::record_mults((self.rows * self.cols) as u64);
        crate::ops::record_adds((self.rows.saturating_sub(1) * self.cols) as u64);
        let mut acc = vec![F::zero(); self.cols];
        for (i, &ui) in u.as_slice().iter().enumerate() {
            if ui.is_zero() {
                continue;
            }
            F::fused_muladd(&mut acc, ui, self.row(i));
        }
        Ok(Vector::from_vec(acc))
    }

    /// Entry-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.add(b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Entry-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.sub(b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: F) -> Matrix<F> {
        let data = self.data.iter().map(|&a| a.mul(s)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when row counts differ.
    pub fn hstack(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        if self.rows != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(rhs.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Vertical concatenation `[self; rhs]` (the paper's `[Bᵀ_1, …]ᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        if self.cols != rhs.cols {
            return Err(Error::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// Extracts the row range `[start, end)` as a new matrix — the paper's
    /// `{·}ᵃ_b` block-selection operator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] when `end > self.nrows()` or
    /// `start > end`.
    pub fn row_block(&self, start: usize, end: usize) -> Result<Matrix<F>> {
        if end > self.rows || start > end {
            return Err(Error::IndexOutOfBounds {
                index: end.max(start),
                bound: self.rows,
                axis: Axis::Row,
            });
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Extracts an arbitrary sub-matrix by row and column ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] when a range exceeds the shape.
    pub fn submatrix(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Result<Matrix<F>> {
        if rows.end > self.rows || rows.start > rows.end {
            return Err(Error::IndexOutOfBounds {
                index: rows.end.max(rows.start),
                bound: self.rows,
                axis: Axis::Row,
            });
        }
        if cols.end > self.cols || cols.start > cols.end {
            return Err(Error::IndexOutOfBounds {
                index: cols.end.max(cols.start),
                bound: self.cols,
                axis: Axis::Col,
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols.len());
        for i in rows.clone() {
            data.extend_from_slice(
                &self.data[i * self.cols + cols.start..i * self.cols + cols.end],
            );
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: cols.len(),
            data,
        })
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// In-place `row[target] -= factor * row[source]` — the elementary row
    /// operation used by Gaussian elimination.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds or `target == source`.
    pub fn row_axpy(&mut self, target: usize, source: usize, factor: F) {
        assert!(
            target < self.rows && source < self.rows,
            "row index out of bounds"
        );
        assert_ne!(target, source, "row_axpy requires distinct rows");
        let (t, s) = if target < source {
            let (head, tail) = self.data.split_at_mut(source * self.cols);
            (
                &mut head[target * self.cols..(target + 1) * self.cols],
                &tail[..self.cols],
            )
        } else {
            let (head, tail) = self.data.split_at_mut(target * self.cols);
            (
                &mut tail[..self.cols],
                &head[source * self.cols..(source + 1) * self.cols],
            )
        };
        F::fused_submul(t, factor, s);
    }

    /// Eliminates column `pc` from every row below `pr`: for each row
    /// `r > pr` with a non-zero entry `v` at column `pc`, applies
    /// `row[r] -= (v · inv) · row[pr]` and writes an exact zero at
    /// `(r, pc)`. `inv` must be the inverse of the pivot `(pr, pc)`.
    ///
    /// This is the forward-elimination inner loop of [`crate::gauss`],
    /// fused ([`Scalar::fused_submul`]) and row-banded across threads when
    /// the trailing block is large.
    ///
    /// # Panics
    ///
    /// Panics when `pr >= self.nrows()` or `pc >= self.ncols()`.
    pub fn eliminate_below(&mut self, pr: usize, pc: usize, inv: F) {
        assert!(pr < self.rows && pc < self.cols, "pivot out of bounds");
        let cols = self.cols;
        let (head, tail) = self.data.split_at_mut((pr + 1) * cols);
        let pivot_row: &[F] = &head[pr * cols..(pr + 1) * cols];
        let below_rows = tail.len() / cols;
        let threads = kernels::threads_for(below_rows * cols);
        kernels::for_row_bands(tail, cols, threads, |_, band| {
            for row in band.chunks_mut(cols) {
                let v = row[pc];
                if v.is_zero() {
                    continue;
                }
                F::fused_submul(row, v.mul(inv), pivot_row);
                // Force exact zero to keep f64 echelon clean.
                row[pc] = F::zero();
            }
        });
    }

    /// Mutable access to one entry (crate-internal; bounds unchecked
    /// beyond debug assertions in callers).
    #[inline]
    pub(crate) fn entry_mut(&mut self, row: usize, col: usize) -> &mut F {
        &mut self.data[row * self.cols + col]
    }

    /// The flat row-major buffer (crate-internal, for kernels).
    #[inline]
    pub(crate) fn flat(&self) -> &[F] {
        &self.data
    }

    /// Mutable flat row-major buffer (crate-internal, for kernels).
    #[inline]
    pub(crate) fn flat_mut(&mut self) -> &mut [F] {
        &mut self.data
    }

    /// Scales row `i` by `factor` in place.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn scale_row(&mut self, i: usize, factor: F) {
        for v in self.row_mut(i) {
            *v = v.mul(factor);
        }
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_flat(self) -> Vec<F> {
        self.data
    }

    /// Borrow the flat row-major buffer.
    pub fn as_flat(&self) -> &[F] {
        &self.data
    }

    /// The rank, computed by Gaussian elimination with partial pivoting.
    ///
    /// This is the paper's `Rank(·)`; availability of an LCEC is
    /// `rank(B) == m + r`.
    pub fn rank(&self) -> usize {
        crate::gauss::rank(self)
    }
}

impl<F: Scalar> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Clamp output so huge experiment matrices stay debuggable.
        const MAX_SHOWN: usize = 8;
        for i in 0..self.rows.min(MAX_SHOWN) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(MAX_SHOWN) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.data[i * self.cols + j])?;
            }
            if self.cols > MAX_SHOWN {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > MAX_SHOWN {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;
    use rand::{rngs::StdRng, SeedableRng};

    fn m2x2() -> Matrix<f64> {
        Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = m2x2();
        assert_eq!(m.shape(), (2, 2));
        assert!(!m.is_empty());
        assert!(m.is_square());
        assert_eq!(m.at(1, 0), 3.0);
        assert_eq!(m.get(1, 1).unwrap(), 4.0);
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert_eq!(Matrix::<f64>::from_rows(vec![]), Err(Error::Empty));
        assert_eq!(Matrix::<f64>::from_rows(vec![vec![]]), Err(Error::Empty));
        assert!(matches!(
            Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(Error::ShapeMismatch {
                op: "from_rows",
                ..
            })
        ));
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn get_set_bounds() {
        let mut m = m2x2();
        assert!(matches!(
            m.get(2, 0),
            Err(Error::IndexOutOfBounds {
                axis: Axis::Row,
                ..
            })
        ));
        assert!(matches!(
            m.get(0, 2),
            Err(Error::IndexOutOfBounds {
                axis: Axis::Col,
                ..
            })
        ));
        m.set(0, 0, 9.0).unwrap();
        assert_eq!(m.at(0, 0), 9.0);
        assert!(m.set(5, 5, 1.0).is_err());
    }

    #[test]
    fn identity_and_zeros() {
        let i = Matrix::<f64>::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
        let z = Matrix::<f64>::zeros(2, 3);
        assert!(z.as_flat().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.at(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let m = m2x2();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
        let p = m.matmul(&m).unwrap();
        assert_eq!(
            p,
            Matrix::from_rows(vec![vec![7.0, 10.0], vec![15.0, 22.0]]).unwrap()
        );
        let bad = Matrix::<f64>::zeros(3, 3);
        assert!(m.matmul(&bad).is_err());
    }

    #[test]
    fn matvec_known_product() {
        let m = m2x2();
        let x = Vector::from_vec(vec![1.0, 1.0]);
        assert_eq!(m.matvec(&x).unwrap().as_slice(), &[3.0, 7.0]);
        let wrong = Vector::from_vec(vec![1.0]);
        assert!(m.matvec(&wrong).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let m = m2x2();
        let s = m.add(&m).unwrap();
        assert_eq!(s, m.scale(2.0));
        assert_eq!(s.sub(&m).unwrap(), m);
        assert!(m.add(&Matrix::zeros(3, 2)).is_err());
        assert!(m.sub(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn stacking() {
        let m = m2x2();
        let h = m.hstack(&Matrix::identity(2)).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.at(0, 2), 1.0);
        assert_eq!(h.at(0, 3), 0.0);
        let v = m.vstack(&Matrix::identity(2)).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.at(2, 0), 1.0);
        assert!(m.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(m.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn row_block_and_submatrix() {
        let m = Matrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let b = m.row_block(1, 3).unwrap();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.at(0, 0), 4.0);
        assert!(m.row_block(2, 4).is_err());
        // Empty block is allowed (used for unselected devices).
        assert_eq!(m.row_block(1, 1).unwrap().nrows(), 0);

        let s = m.submatrix(0..2, 1..3).unwrap();
        assert_eq!(
            s,
            Matrix::from_rows(vec![vec![2.0, 3.0], vec![5.0, 6.0]]).unwrap()
        );
        assert!(m.submatrix(0..4, 0..1).is_err());
        assert!(m.submatrix(0..1, 0..4).is_err());
    }

    #[test]
    fn swap_rows_and_axpy() {
        let mut m = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        m.swap_rows(0, 1);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(0, 1), 1.0);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.at(1, 0), 1.0);

        let mut m = m2x2();
        m.row_axpy(1, 0, 3.0); // row1 -= 3*row0 => [0, -2]
        assert_eq!(m.row(1), &[0.0, -2.0]);
        m.row_axpy(0, 1, -1.0); // row0 += row1 => [1, 0]
        assert_eq!(m.row(0), &[1.0, 0.0]);
        m.scale_row(1, -0.5);
        assert_eq!(m.row(1), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn row_axpy_same_row_panics() {
        let mut m = m2x2();
        m.row_axpy(0, 0, 1.0);
    }

    #[test]
    fn col_extraction() {
        let m = m2x2();
        assert_eq!(m.col(0).as_slice(), &[1.0, 3.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = m2x2();
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn random_matrix_over_fp() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = Matrix::<Fp61>::random(4, 5, &mut rng);
        assert_eq!(m.shape(), (4, 5));
        // Overwhelmingly likely all distinct in a 2^61 field.
        let mut seen = std::collections::HashSet::new();
        for &v in m.as_flat() {
            seen.insert(v.residue());
        }
        assert!(seen.len() > 15);
    }

    #[test]
    fn blocked_transpose_matches_naive_past_tile_size() {
        // 45x70 straddles tile boundaries (TRANSPOSE_TILE = 32) with
        // ragged edge tiles in both dimensions.
        let mut rng = StdRng::seed_from_u64(21);
        let m = Matrix::<Fp61>::random(45, 70, &mut rng);
        let t = m.transpose();
        assert_eq!(t.shape(), (70, 45));
        for i in 0..45 {
            for j in 0..70 {
                assert_eq!(t.at(j, i), m.at(i, j));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_serial_and_parallel_agree() {
        let mut rng = StdRng::seed_from_u64(22);
        // Big enough to clear PAR_THRESHOLD so matmul takes the banded path.
        let a = Matrix::<Fp61>::random(40, 64, &mut rng);
        let b = Matrix::<Fp61>::random(64, 33, &mut rng);
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_serial(&b).unwrap());

        let af = Matrix::<f64>::random(40, 64, &mut rng);
        let bf = Matrix::<f64>::random(64, 33, &mut rng);
        // f64 must agree bitwise: per-row op order is identical.
        assert_eq!(af.matmul(&bf).unwrap(), af.matmul_serial(&bf).unwrap());
    }

    #[test]
    fn tr_matvec_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::<Fp61>::random(37, 19, &mut rng);
        let u = Vector::<Fp61>::random(37, &mut rng);
        let direct = a.tr_matvec(&u).unwrap();
        let via_transpose = a.transpose().matvec(&u).unwrap();
        assert_eq!(direct, via_transpose);
        assert!(a.tr_matvec(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn eliminate_below_matches_row_axpy_loop() {
        let mut rng = StdRng::seed_from_u64(24);
        let src = Matrix::<Fp61>::random(12, 9, &mut rng);
        let inv = src.at(2, 3).inv().unwrap();

        let mut fused = src.clone();
        fused.eliminate_below(2, 3, inv);

        let mut reference = src.clone();
        for r in 3..12 {
            let factor = reference.at(r, 3).mul(inv);
            if !factor.is_zero() {
                reference.row_axpy(r, 2, factor);
            }
            reference.set(r, 3, Fp61::zero()).unwrap();
        }
        assert_eq!(fused, reference);
        // Rows at or above the pivot are untouched.
        for r in 0..3 {
            assert_eq!(fused.row(r), src.row(r));
        }
    }

    #[test]
    fn debug_output_is_clamped() {
        let m = Matrix::<f64>::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }
}
