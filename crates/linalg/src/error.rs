//! Error types for linear-algebra operations.

use std::fmt;

/// A specialized result type for linear-algebra operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by linear-algebra operations.
///
/// Every fallible public function in this crate returns [`Result`] with this
/// error type. The variants describe *why* an operation was rejected so that
/// callers (the coding and allocation layers) can surface precise
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A row or column index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive upper bound the index was checked against.
        bound: usize,
        /// Which axis the index addressed.
        axis: Axis,
    },
    /// A square, invertible matrix was required but the operand is singular
    /// (or numerically rank-deficient for `f64`).
    Singular,
    /// An operation required a square matrix but got `rows != cols`.
    NotSquare {
        /// Number of rows of the operand.
        rows: usize,
        /// Number of columns of the operand.
        cols: usize,
    },
    /// A matrix or vector with zero rows/columns was passed where a
    /// non-empty operand is required.
    Empty,
    /// Division by zero (or inversion of the zero element) in field
    /// arithmetic.
    DivisionByZero,
    /// The linear system has no solution (inconsistent right-hand side).
    Inconsistent,
}

/// Matrix axis, used in [`Error::IndexOutOfBounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The row axis.
    Row,
    /// The column axis.
    Col,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Row => f.write_str("row"),
            Axis::Col => f.write_str("column"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (size {bound})")
            }
            Error::Singular => f.write_str("matrix is singular"),
            Error::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            Error::Empty => f.write_str("operand is empty"),
            Error::DivisionByZero => f.write_str("division by zero in field arithmetic"),
            Error::Inconsistent => f.write_str("linear system is inconsistent"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = Error::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = Error::IndexOutOfBounds {
            index: 7,
            bound: 3,
            axis: Axis::Row,
        };
        assert_eq!(e.to_string(), "row index 7 out of bounds (size 3)");
        let e = Error::IndexOutOfBounds {
            index: 1,
            bound: 0,
            axis: Axis::Col,
        };
        assert_eq!(e.to_string(), "column index 1 out of bounds (size 0)");
    }

    #[test]
    fn display_simple_variants() {
        assert_eq!(Error::Singular.to_string(), "matrix is singular");
        assert_eq!(
            Error::NotSquare { rows: 2, cols: 3 }.to_string(),
            "matrix is not square (2x3)"
        );
        assert_eq!(Error::Empty.to_string(), "operand is empty");
        assert_eq!(
            Error::DivisionByZero.to_string(),
            "division by zero in field arithmetic"
        );
        assert_eq!(
            Error::Inconsistent.to_string(),
            "linear system is inconsistent"
        );
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
