//! Process-wide field-operation counters — the flop hooks telemetry
//! snapshots read.
//!
//! The big kernels ([`Matrix::matmul`](crate::Matrix::matmul),
//! [`matvec`](crate::Matrix::matvec), [`tr_matvec`](crate::Matrix::tr_matvec))
//! record their *nominal dense* operation counts (`rows·inner·cols`
//! multiplies, and so on) on entry — one relaxed atomic add per kernel
//! call, not per element, so the hot loops are untouched. Structured
//! sparsity (the 0/1 encoding matrices skip zero coefficients) is
//! deliberately not discounted: the nominal count is what the paper's
//! cost model prices. Gaussian-elimination paths are not counted.
//!
//! With the `telemetry` feature disabled every function here is an
//! empty `#[inline]` stub, the counters read zero, and the kernels
//! carry no atomics at all — the zero-overhead path CI builds with
//! `--no-default-features`.

#[cfg(feature = "telemetry")]
mod imp {
    use std::sync::atomic::AtomicU64;

    pub static MULTS: AtomicU64 = AtomicU64::new(0);
    pub static ADDS: AtomicU64 = AtomicU64::new(0);
}

/// Adds `n` field multiplications to the global tally.
#[inline]
pub fn record_mults(n: u64) {
    #[cfg(feature = "telemetry")]
    imp::MULTS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    let _ = n;
}

/// Adds `n` field additions to the global tally.
#[inline]
pub fn record_adds(n: u64) {
    #[cfg(feature = "telemetry")]
    imp::ADDS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    let _ = n;
}

/// Field multiplications recorded since start (or [`reset`]).
#[inline]
pub fn mults() -> u64 {
    #[cfg(feature = "telemetry")]
    return imp::MULTS.load(std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Field additions recorded since start (or [`reset`]).
#[inline]
pub fn adds() -> u64 {
    #[cfg(feature = "telemetry")]
    return imp::ADDS.load(std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Zeroes both counters. Counters are process-global, so tests that
/// assert on deltas should read before/after instead of resetting
/// under a parallel test runner.
#[inline]
pub fn reset() {
    #[cfg(feature = "telemetry")]
    {
        imp::MULTS.store(0, std::sync::atomic::Ordering::Relaxed);
        imp::ADDS.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let (m0, a0) = (mults(), adds());
        record_mults(7);
        record_adds(3);
        assert!(mults() >= m0 + 7);
        assert!(adds() >= a0 + 3);
    }
}
