//! A generic prime field `GF(P)` with a const-generic modulus.
//!
//! [`Fp61`](crate::fp::Fp61) is the production field: a Mersenne prime
//! large enough that random matrices are invertible with probability
//! `1 − 2⁻⁶¹`. `FpGeneric<P>` complements it for two purposes:
//!
//! * **wire efficiency** — deployments with small payloads can run over
//!   e.g. `GF(257)` or `GF(65537)` and ship one or two bytes per value;
//! * **adversarial testing** — over a small field, random constructions
//!   (dense mixers, straggler extensions) *do* occasionally come out
//!   singular, which exercises the re-sampling and error paths that a
//!   2⁶¹-sized field never hits in practice.
//!
//! The modulus is validated with a `const`-evaluated primality test, so
//! the runtime assertion compiles away entirely for valid moduli.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scalar::Scalar;

/// An element of `GF(P)` for a caller-chosen prime `P < 2^31`.
///
/// The bound `P < 2^31` keeps products inside `u64` without widening to
/// `u128`, which makes small fields cheap.
///
/// # Panics
///
/// Any arithmetic or sampling panics if `P` is not a prime in
/// `[2, 2^31)` — the check runs once per field and is cached.
///
/// # Example
///
/// ```
/// use scec_linalg::fp_generic::FpGeneric;
///
/// type F257 = FpGeneric<257>;
/// let a = F257::new(200);
/// let b = F257::new(100);
/// assert_eq!((a + b).residue(), 43); // 300 mod 257
/// assert_eq!((a / b) * b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FpGeneric<const P: u64>(u64);

/// Trial-division primality test, const-evaluable so the check costs
/// nothing at runtime.
const fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

impl<const P: u64> FpGeneric<P> {
    /// Evaluated at monomorphization time; the runtime assert on it
    /// compiles away for valid moduli.
    const VALID_MODULUS: bool = P >= 2 && P < (1 << 31) && is_prime(P);

    fn assert_valid_modulus() {
        assert!(
            Self::VALID_MODULUS,
            "modulus {P} is not prime (or not below 2^31)"
        );
    }

    /// Creates a field element, reducing modulo `P`.
    ///
    /// # Panics
    ///
    /// Panics when `P` is not a prime below `2^31`.
    #[inline]
    pub fn new(value: u64) -> Self {
        Self::assert_valid_modulus();
        FpGeneric(value % P)
    }

    /// The canonical representative in `[0, P)`.
    #[inline]
    pub fn residue(self) -> u64 {
        self.0
    }

    /// Modular exponentiation by squaring.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = FpGeneric(1 % P);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }
}

impl<const P: u64> fmt::Debug for FpGeneric<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp<{P}>({})", self.0)
    }
}

impl<const P: u64> fmt::Display for FpGeneric<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl<const P: u64> std::ops::Add for FpGeneric<P> {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0;
        if s >= P {
            s -= P;
        }
        FpGeneric(s)
    }
}

impl<const P: u64> std::ops::Sub for FpGeneric<P> {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        FpGeneric(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }
}

impl<const P: u64> std::ops::Mul for FpGeneric<P> {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        // P < 2^31 so the product fits u64 exactly.
        FpGeneric(self.0 * rhs.0 % P)
    }
}

impl<const P: u64> std::ops::Neg for FpGeneric<P> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            FpGeneric(P - self.0)
        }
    }
}

impl<const P: u64> std::ops::Div for FpGeneric<P> {
    type Output = Self;

    /// # Panics
    ///
    /// Panics on division by zero; use [`Scalar::div`] for the fallible
    /// form.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        Scalar::div(self, rhs).expect("division by zero in GF(P)")
    }
}

impl<const P: u64> Scalar for FpGeneric<P> {
    #[inline]
    fn zero() -> Self {
        Self::assert_valid_modulus();
        FpGeneric(0)
    }

    #[inline]
    fn one() -> Self {
        Self::assert_valid_modulus();
        FpGeneric(1 % P)
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline]
    fn neg(self) -> Self {
        -self
    }

    #[inline]
    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P - 2))
        }
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn pivot_weight(&self) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            1.0
        }
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::assert_valid_modulus();
        FpGeneric(rng.gen_range(0..P))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss;
    use crate::matrix::Matrix;
    use rand::{rngs::StdRng, SeedableRng};

    type F257 = FpGeneric<257>;
    type F65537 = FpGeneric<65537>;

    #[test]
    fn field_axioms_smoke() {
        for a in [0u64, 1, 7, 128, 256] {
            for b in [0u64, 1, 100, 256] {
                let (fa, fb) = (F257::new(a), F257::new(b));
                assert_eq!((fa + fb).residue(), (a + b) % 257);
                assert_eq!((fa * fb).residue(), a * b % 257);
                assert_eq!(fa + (-fa), F257::new(0));
                if b % 257 != 0 {
                    assert_eq!((fa / fb) * fb, fa);
                }
            }
        }
    }

    #[test]
    fn fermat_inverse() {
        for v in 1..257u64 {
            let x = F257::new(v);
            assert_eq!(x * Scalar::inv(x).unwrap(), F257::new(1));
        }
        assert_eq!(Scalar::inv(F257::new(0)), None);
    }

    #[test]
    fn large_prime_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::<F65537>::random(8, 8, &mut rng);
        if let Ok(inv) = gauss::invert(&a) {
            assert_eq!(a.matmul(&inv).unwrap(), Matrix::identity(8));
        }
    }

    #[test]
    fn small_field_singularity_happens_and_is_handled() {
        // Over GF(257), random 8x8 matrices are singular w.p. ~1/257·c;
        // scanning seeds must find at least one singular draw, and rank
        // must never panic.
        let mut singular_seen = false;
        for seed in 0..2000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::<F257>::random(8, 8, &mut rng);
            if a.rank() < 8 {
                singular_seen = true;
                assert!(gauss::invert(&a).is_err());
                break;
            }
        }
        assert!(
            singular_seen,
            "no singular matrix in 2000 draws — suspicious"
        );
    }

    #[test]
    fn solve_works_over_small_field() {
        use crate::vector::Vector;
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::<F257>::random(5, 5, &mut rng);
        let x = Vector::<F257>::random(5, &mut rng);
        let b = a.matvec(&x).unwrap();
        match gauss::solve(&a, &b) {
            Ok(got) => assert_eq!(a.matvec(&got).unwrap(), b),
            Err(_) => assert!(a.rank() < 5),
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(F257::new(2).pow(8).residue(), 256);
        assert_eq!(F257::new(5).pow(0).residue(), 1);
        assert_eq!(F257::new(3).pow(256).residue(), 1); // Fermat
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn composite_modulus_panics() {
        let _ = FpGeneric::<256>::new(1);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(F257::new(300).to_string(), "43");
        assert_eq!(format!("{:?}", F257::new(43)), "Fp<257>(43)");
    }
}
