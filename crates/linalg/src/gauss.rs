//! Gaussian elimination: rank, row-reduction, solving, and inversion.
//!
//! These routines implement the paper's `Rank(·)` operator and the generic
//! decoding path ("if the encoding matrix **B** is full rank, the user
//! device can obtain **Tx** by Gaussian elimination", Sec. II-A). All of
//! them use partial pivoting via [`Scalar::pivot_weight`], which is exact
//! for finite fields and numerically robust for `f64`.

use crate::error::{Error, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// Result of an in-place forward elimination: the echelon form plus
/// bookkeeping needed by [`rank`], [`solve`] and [`invert`].
#[derive(Clone)]
pub struct Echelon<F> {
    /// The matrix in row echelon form.
    pub matrix: Matrix<F>,
    /// Column index of the pivot of each pivot row, in order.
    pub pivot_cols: Vec<usize>,
}

impl<F: Scalar> Echelon<F> {
    /// The rank = number of pivots.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

impl<F: Scalar> std::fmt::Debug for Echelon<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Echelon")
            .field("matrix", &self.matrix)
            .field("pivot_cols", &self.pivot_cols)
            .finish()
    }
}

/// Forward-eliminates `m` into row echelon form with partial pivoting.
///
/// Returns the echelon form and pivot columns. Works for any shape,
/// including empty matrices (rank 0).
pub fn echelon<F: Scalar>(m: &Matrix<F>) -> Echelon<F> {
    let mut a = m.clone();
    let (rows, cols) = a.shape();
    let mut pivot_cols = Vec::new();
    let mut pr = 0; // next pivot row
    for pc in 0..cols {
        if pr >= rows {
            break;
        }
        // Partial pivoting: pick the row with the largest pivot weight.
        let mut best = pr;
        let mut best_w = a.at(pr, pc).pivot_weight();
        for r in (pr + 1)..rows {
            let w = a.at(r, pc).pivot_weight();
            if w > best_w {
                best = r;
                best_w = w;
            }
        }
        if best_w == 0.0 {
            continue; // no pivot in this column
        }
        a.swap_rows(pr, best);
        let pivot = a.at(pr, pc);
        let inv = pivot.inv().expect("non-zero pivot by construction");
        // Fused, row-banded elimination of the trailing block (writes
        // exact zeros in the pivot column to keep f64 echelon clean).
        a.eliminate_below(pr, pc, inv);
        pivot_cols.push(pc);
        pr += 1;
    }
    Echelon {
        matrix: a,
        pivot_cols,
    }
}

/// The rank of `m` (the paper's `Rank(·)`).
///
/// An empty matrix has rank 0.
pub fn rank<F: Scalar>(m: &Matrix<F>) -> usize {
    if m.is_empty() {
        return 0;
    }
    echelon(m).rank()
}

/// The reduced row echelon form of `m`.
///
/// Pivots are normalized to one and eliminated upward, so the non-zero rows
/// form a canonical basis of the row space — used by the span calculus and
/// by the adversary's inference procedure in `scec-sim`.
pub fn rref<F: Scalar>(m: &Matrix<F>) -> Echelon<F> {
    let Echelon {
        mut matrix,
        pivot_cols,
    } = echelon(m);
    for (pr, &pc) in pivot_cols.iter().enumerate().rev() {
        let pivot = matrix.at(pr, pc);
        let inv = pivot.inv().expect("pivot is non-zero");
        matrix.scale_row(pr, inv);
        matrix.set(pr, pc, F::one()).expect("index in range");
        for r in 0..pr {
            let v = matrix.at(r, pc);
            if v.is_zero() {
                continue;
            }
            matrix.row_axpy(r, pr, v);
            matrix.set(r, pc, F::zero()).expect("index in range");
        }
    }
    Echelon { matrix, pivot_cols }
}

/// Solves the square system `a · x = b` by Gaussian elimination.
///
/// This is the *generic* decoder of the paper's Sec. II-A: given the full
/// `B T x` vector and a full-rank `B`, recover `T x`.
///
/// # Errors
///
/// * [`Error::NotSquare`] when `a` is not square;
/// * [`Error::ShapeMismatch`] when `b.len() != a.nrows()`;
/// * [`Error::Singular`] when `a` is (numerically) singular.
pub fn solve<F: Scalar>(a: &Matrix<F>, b: &Vector<F>) -> Result<Vector<F>> {
    let (rows, cols) = a.shape();
    if rows != cols {
        return Err(Error::NotSquare { rows, cols });
    }
    if b.len() != rows {
        return Err(Error::ShapeMismatch {
            op: "solve",
            lhs: (rows, cols),
            rhs: (b.len(), 1),
        });
    }
    // Augment [a | b] and reduce.
    let aug = a.hstack(&b.clone().into_column_matrix())?;
    let red = rref(&aug);
    let coeff_rank = red.pivot_cols.iter().filter(|&&c| c < cols).count();
    if coeff_rank < rows {
        // A pivot in the augmented column means no solution exists;
        // otherwise the coefficient block is rank-deficient with infinitely
        // many solutions. Both are decode failures for a square system.
        if red.pivot_cols.contains(&cols) {
            return Err(Error::Inconsistent);
        }
        return Err(Error::Singular);
    }
    let mut x = vec![F::zero(); cols];
    for (pr, &pc) in red.pivot_cols.iter().enumerate() {
        if pc < cols {
            x[pc] = red.matrix.at(pr, cols);
        }
    }
    Ok(Vector::from_vec(x))
}

/// Factorizes a square system once so that many right-hand sides can be
/// solved in O(n²) each, instead of re-running the O(n³) elimination of
/// [`solve`] per call.
///
/// This is the entry point for *decode plans*: a coded store answers a
/// stream of queries against a fixed encoding matrix `B`, so the caller
/// factors `B` up front and then runs only triangular solves per query.
/// The factorization agrees with [`solve`] on every right-hand side
/// (both use partial pivoting over [`Scalar::pivot_weight`]).
///
/// # Errors
///
/// * [`Error::NotSquare`] when `a` is not square;
/// * [`Error::Empty`] when `a` has no rows;
/// * [`Error::Singular`] when `a` is (numerically) rank deficient.
pub fn factorize<F: Scalar>(a: &Matrix<F>) -> Result<Lu<F>> {
    Lu::factor(a)
}

/// Solves the (possibly rectangular, possibly underdetermined) system
/// `a · X = b` for a matrix of right-hand sides, returning **one**
/// particular solution with free variables set to zero.
///
/// This is the workhorse of the simulated adversary's *simulatability*
/// check: given what a device observed, exhibit randomness consistent with
/// any alternative data matrix.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] when `b.nrows() != a.nrows()`;
/// * [`Error::Inconsistent`] when no solution exists.
pub fn solve_rectangular<F: Scalar>(a: &Matrix<F>, b: &Matrix<F>) -> Result<Matrix<F>> {
    let (rows, cols) = a.shape();
    if b.nrows() != rows {
        return Err(Error::ShapeMismatch {
            op: "solve_rectangular",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let aug = a.hstack(b)?;
    let red = rref(&aug);
    if red.pivot_cols.iter().any(|&c| c >= cols) {
        return Err(Error::Inconsistent);
    }
    let mut x = Matrix::zeros(cols, b.ncols());
    for (pr, &pc) in red.pivot_cols.iter().enumerate() {
        for n in 0..b.ncols() {
            x.set(pc, n, red.matrix.at(pr, cols + n))
                .expect("index in range");
        }
    }
    Ok(x)
}

/// Inverts a square matrix.
///
/// # Errors
///
/// * [`Error::NotSquare`] when `a` is not square;
/// * [`Error::Singular`] when `a` is (numerically) singular.
pub fn invert<F: Scalar>(a: &Matrix<F>) -> Result<Matrix<F>> {
    let (rows, cols) = a.shape();
    if rows != cols {
        return Err(Error::NotSquare { rows, cols });
    }
    if rows == 0 {
        return Err(Error::Empty);
    }
    let aug = a.hstack(&Matrix::identity(rows))?;
    let red = rref(&aug);
    // Full rank iff every pivot lands in the coefficient block's diagonal.
    if red.rank() < rows || red.pivot_cols.iter().any(|&c| c >= cols) {
        return Err(Error::Singular);
    }
    red.matrix.submatrix(0..rows, cols..2 * cols)
}

/// The determinant of a square matrix, via the echelon form.
///
/// # Errors
///
/// Returns [`Error::NotSquare`] when `a` is not square.
pub fn determinant<F: Scalar>(a: &Matrix<F>) -> Result<F> {
    let (rows, cols) = a.shape();
    if rows != cols {
        return Err(Error::NotSquare { rows, cols });
    }
    if rows == 0 {
        return Ok(F::one());
    }
    // Track row swaps for the sign; redo elimination locally.
    let mut m = a.clone();
    let mut det = F::one();
    let mut sign_flip = false;
    for pc in 0..cols {
        let mut best = pc;
        let mut best_w = m.at(pc, pc).pivot_weight();
        for r in (pc + 1)..rows {
            let w = m.at(r, pc).pivot_weight();
            if w > best_w {
                best = r;
                best_w = w;
            }
        }
        if best_w == 0.0 {
            return Ok(F::zero());
        }
        if best != pc {
            m.swap_rows(pc, best);
            sign_flip = !sign_flip;
        }
        let pivot = m.at(pc, pc);
        det = det.mul(pivot);
        let inv = pivot.inv().expect("non-zero pivot");
        m.eliminate_below(pc, pc, inv);
    }
    Ok(if sign_flip { det.neg() } else { det })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp61;
    use rand::{rngs::StdRng, SeedableRng};

    fn mat(rows: Vec<Vec<f64>>) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(rank(&Matrix::<f64>::identity(4)), 4);
        assert_eq!(rank(&Matrix::<f64>::zeros(3, 5)), 0);
        assert_eq!(rank(&Matrix::<f64>::zeros(0, 5)), 0);
    }

    #[test]
    fn rank_detects_dependence() {
        let m = mat(vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 0.0, 1.0],
        ]);
        assert_eq!(rank(&m), 2);
        let wide = mat(vec![vec![1.0, 2.0, 3.0]]);
        assert_eq!(rank(&wide), 1);
        let tall = mat(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(rank(&tall), 1);
    }

    #[test]
    fn rank_over_fp61() {
        let one = Fp61::new(1);
        let two = Fp61::new(2);
        let m = Matrix::from_rows(vec![vec![one, two], vec![two, Fp61::new(4)]]).unwrap();
        assert_eq!(rank(&m), 1);
        assert_eq!(rank(&Matrix::<Fp61>::identity(3)), 3);
    }

    #[test]
    fn rref_canonical_form() {
        let m = mat(vec![vec![2.0, 4.0], vec![1.0, 3.0]]);
        let r = rref(&m);
        assert_eq!(r.rank(), 2);
        assert_eq!(r.matrix, Matrix::identity(2));
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5, 3x + 4y = 11 => x = 1, y = 2
        let a = mat(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Vector::from_vec(vec![5.0, 11.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x.at(0) - 1.0).abs() < 1e-9);
        assert!((x.at(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_rejects_bad_inputs() {
        let a = mat(vec![vec![1.0, 2.0]]);
        assert!(matches!(
            solve(&a, &Vector::from_vec(vec![1.0])),
            Err(Error::NotSquare { .. })
        ));
        let sq = Matrix::<f64>::identity(2);
        assert!(matches!(
            solve(&sq, &Vector::from_vec(vec![1.0])),
            Err(Error::ShapeMismatch { .. })
        ));
        let singular = mat(vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
        // Consistent but underdetermined: singular.
        assert!(matches!(
            solve(&singular, &Vector::from_vec(vec![1.0, 1.0])),
            Err(Error::Singular)
        ));
        // No solution at all: inconsistent.
        assert!(matches!(
            solve(&singular, &Vector::from_vec(vec![1.0, 2.0])),
            Err(Error::Inconsistent)
        ));
    }

    #[test]
    fn solve_over_fp61() {
        let a = Matrix::from_rows(vec![
            vec![Fp61::new(1), Fp61::new(2)],
            vec![Fp61::new(3), Fp61::new(5)],
        ])
        .unwrap();
        let want = Vector::from_vec(vec![Fp61::new(7), Fp61::new(9)]);
        let b = a.matvec(&want).unwrap();
        let got = solve(&a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn invert_roundtrip_f64() {
        let a = mat(vec![vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod.at(i, j) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn invert_roundtrip_fp61() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Matrix::<Fp61>::random(6, 6, &mut rng);
        // Random matrices over a huge field are invertible w.p. ~1.
        let inv = invert(&a).unwrap();
        assert_eq!(a.matmul(&inv).unwrap(), Matrix::identity(6));
        assert_eq!(inv.matmul(&a).unwrap(), Matrix::identity(6));
    }

    #[test]
    fn invert_rejects_singular_and_nonsquare() {
        assert!(matches!(
            invert(&mat(vec![vec![1.0, 2.0]])),
            Err(Error::NotSquare { .. })
        ));
        assert!(matches!(
            invert(&mat(vec![vec![1.0, 2.0], vec![2.0, 4.0]])),
            Err(Error::Singular)
        ));
    }

    #[test]
    fn determinant_known_values() {
        assert_eq!(determinant(&Matrix::<f64>::identity(3)).unwrap(), 1.0);
        let a = mat(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((determinant(&a).unwrap() + 2.0).abs() < 1e-9);
        let singular = mat(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(determinant(&singular).unwrap(), 0.0);
        assert!(determinant(&mat(vec![vec![1.0, 2.0]])).is_err());
    }

    #[test]
    fn determinant_tracks_row_swaps() {
        // [[0, 1], [1, 0]] has determinant -1.
        let a = mat(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((determinant(&a).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn echelon_pivot_columns_are_increasing() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Matrix::<f64>::random(5, 8, &mut rng);
        let e = echelon(&m);
        for w in e.pivot_cols.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(e.rank(), 5);
    }

    #[test]
    fn solve_rectangular_underdetermined() {
        // 1 equation, 2 unknowns: x + y = 3 → particular solution (3, 0).
        let a = mat(vec![vec![1.0, 1.0]]);
        let b = mat(vec![vec![3.0]]);
        let x = solve_rectangular(&a, &b).unwrap();
        assert_eq!(x.shape(), (2, 1));
        let back = a.matmul(&x).unwrap();
        assert!((back.at(0, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rectangular_full_row_rank_fp() {
        let mut rng = StdRng::seed_from_u64(21);
        // 3x5 full-row-rank system: always solvable for any RHS.
        let a = Matrix::<Fp61>::random(3, 5, &mut rng);
        assert_eq!(rank(&a), 3);
        let b = Matrix::<Fp61>::random(3, 4, &mut rng);
        let x = solve_rectangular(&a, &b).unwrap();
        assert_eq!(a.matmul(&x).unwrap(), b);
    }

    #[test]
    fn solve_rectangular_detects_inconsistency() {
        // x + y = 1 and x + y = 2 cannot both hold.
        let a = mat(vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
        let b = mat(vec![vec![1.0], vec![2.0]]);
        assert!(matches!(
            solve_rectangular(&a, &b),
            Err(Error::Inconsistent)
        ));
        // Consistent duplicate rows are fine.
        let b_ok = mat(vec![vec![1.0], vec![1.0]]);
        let x = solve_rectangular(&a, &b_ok).unwrap();
        assert!((a.matmul(&x).unwrap().at(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rectangular_shape_mismatch() {
        let a = mat(vec![vec![1.0, 1.0]]);
        let b = mat(vec![vec![1.0], vec![2.0]]);
        assert!(matches!(
            solve_rectangular(&a, &b),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_random_roundtrip_f64() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 10] {
            let a = Matrix::<f64>::random(n, n, &mut rng);
            let want = Vector::<f64>::random(n, &mut rng);
            let b = a.matvec(&want).unwrap();
            let got = solve(&a, &b).unwrap();
            for i in 0..n {
                assert!(
                    (got.at(i) - want.at(i)).abs() < 1e-6,
                    "n={n} i={i}: {} vs {}",
                    got.at(i),
                    want.at(i)
                );
            }
        }
    }
}
