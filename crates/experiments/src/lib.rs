//! Experiment harness regenerating every figure of the MCSCEC paper.
//!
//! The paper's evaluation (Sec. V) is five Monte-Carlo sweeps — Fig. 2
//! (a)–(e) — comparing six curves: the lower bound **LB** (Theorem 1),
//! **MCSCEC** (TA1/TA2 + the secure code), the insecure floor **TAw/oS**,
//! and the secure baselines **MaxNode**, **MinNode**, **RNode**. Each
//! point averages 1000 random fleets.
//!
//! This crate reproduces all five figures bit-for-bit-reproducibly (seeded
//! RNG, deterministic parallel sharding), checks the paper's headline
//! claims (MCSCEC within 0.5% of LB; ≥ 26% savings over baselines; bounded
//! security premium), and adds the ablations indexed in `DESIGN.md`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p scec-experiments --release -- all
//! ```
//!
//! # Example: one sweep point
//!
//! ```
//! use scec_experiments::runner::MonteCarlo;
//! use scec_sim::CostDistribution;
//!
//! let mc = MonteCarlo::new(50, 7); // 50 instances, seed 7
//! let point = mc.run_point(100, 10, CostDistribution::uniform(5.0));
//! assert!(point.mcscec >= point.lower_bound);
//! assert!(point.mcscec <= point.max_node + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chart;
pub mod claims;
pub mod figures;
pub mod runner;
pub mod security;
pub mod table;
pub mod throughput;

pub use runner::{AlgoCosts, MonteCarlo};
pub use table::Table;
