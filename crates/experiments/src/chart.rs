//! ASCII line charts for terminal figure output.
//!
//! No plotting crate is in the offline dependency set, so the harness
//! renders each sweep as a compact character-grid chart — enough to *see*
//! the paper's qualitative shapes (who wins, where curves cross) straight
//! from `cargo run -p scec-experiments -- all`.

use crate::figures::Sweep;
use crate::runner::AlgoCosts;

/// Per-curve glyphs, aligned with [`AlgoCosts::labels`].
const GLYPHS: [char; 6] = ['L', 'M', 'w', 'X', 'N', 'R'];

/// Renders a sweep as an ASCII chart of `height` rows by one column per
/// grid point (plus axes and a legend).
///
/// Later-drawn curves overwrite earlier glyphs in shared cells; MCSCEC is
/// drawn last so the headline curve always stays visible.
///
/// # Panics
///
/// Panics when `height < 2` or the sweep is empty.
pub fn render(sweep: &Sweep, height: usize, width: usize) -> String {
    assert!(height >= 2, "chart height must be at least 2");
    assert!(!sweep.points.is_empty(), "cannot chart an empty sweep");
    let labels = AlgoCosts::labels();
    let curves: Vec<Vec<f64>> = labels.iter().map(|l| sweep.curve(l)).collect();
    let lo = curves
        .iter()
        .flatten()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = curves
        .iter()
        .flatten()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let cols = width.max(sweep.points.len());
    let n = sweep.points.len();

    let mut grid = vec![vec![' '; cols]; height];
    // Draw order: everything else first, then LB, then MCSCEC on top.
    let order = [2usize, 3, 4, 5, 0, 1];
    for &c in &order {
        for (t, &v) in curves[c].iter().enumerate() {
            let col = if n == 1 { 0 } else { t * (cols - 1) / (n - 1) };
            let frac = (v - lo) / span;
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = GLYPHS[c];
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} — total cost vs {} (top {:.1}, bottom {:.1})\n",
        sweep.id, sweep.param, hi, lo
    ));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    out.push_str(&format!("   {} = {:?}\n", sweep.param, sweep.params()));
    out.push_str("   legend: ");
    for (glyph, label) in GLYPHS.iter().zip(labels) {
        out.push_str(&format!("{glyph}={label} "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig2d, Defaults};
    use crate::runner::MonteCarlo;

    fn sweep() -> Sweep {
        let mc = MonteCarlo::new(10, 5);
        let d = Defaults {
            m: 100,
            k: 10,
            ..Defaults::default()
        };
        fig2d(&mc, &d)
    }

    #[test]
    fn chart_contains_all_glyphs_and_axes() {
        let s = sweep();
        let chart = render(&s, 12, 40);
        for g in GLYPHS {
            assert!(chart.contains(g), "glyph {g} missing:\n{chart}");
        }
        assert!(chart.contains("legend:"));
        assert!(chart.contains("fig2d"));
        assert!(chart.lines().count() >= 14);
    }

    #[test]
    fn mcscec_is_drawn_on_top_of_lb() {
        // MCSCEC ≈ LB everywhere, so their cells collide; M must win.
        let s = sweep();
        let chart = render(&s, 16, 40);
        let m_count = chart.matches('M').count();
        assert!(
            m_count >= s.points.len() / 2,
            "M drawn {m_count} times:\n{chart}"
        );
    }

    #[test]
    #[should_panic(expected = "height must be at least 2")]
    fn tiny_height_panics() {
        let s = sweep();
        let _ = render(&s, 1, 10);
    }
}
