//! CLI entry point: regenerate the paper's figures and claims.
//!
//! ```text
//! cargo run -p scec-experiments --release -- all
//! cargo run -p scec-experiments --release -- fig2a --instances 1000
//! cargo run -p scec-experiments --release -- claims
//! cargo run -p scec-experiments --release -- completion
//! cargo run -p scec-experiments --release -- decode
//! ```
//!
//! CSV output lands in `results/`; a markdown rendering is printed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use scec_experiments::claims;
use scec_experiments::figures::{self, Defaults, Sweep};
use scec_experiments::runner::MonteCarlo;
use scec_experiments::table::Table;

struct Cli {
    command: String,
    instances: usize,
    seed: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut cli = Cli {
        command,
        instances: 1000,
        seed: 2019, // ICDCS 2019
        out_dir: PathBuf::from("results"),
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--instances" => {
                cli.instances = value()?
                    .parse()
                    .map_err(|e| format!("bad --instances: {e}"))?
            }
            "--seed" => cli.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--out" => cli.out_dir = PathBuf::from(value()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cli)
}

fn emit(table: &Table, name: &str, out_dir: &Path) {
    let path = out_dir.join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("## {name}  (written to {})\n", path.display()),
        Err(e) => println!("## {name}  (CSV write failed: {e})\n"),
    }
    println!("{}", table.to_markdown());
}

fn emit_sweep(sweep: &Sweep, out_dir: &Path) {
    emit(&sweep.to_table(), sweep.id, out_dir);
    println!("{}", scec_experiments::chart::render(sweep, 14, 56));
    emit(
        &claims::gaps_table(sweep),
        &format!("{}_gaps", sweep.id),
        out_dir,
    );
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: scec-experiments [all|fig2a|fig2b|fig2c|fig2d|fig2e|claims|completion|decode|straggler|collusion|security|throughput] \
                 [--instances N] [--seed S] [--out DIR]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mc = MonteCarlo::new(cli.instances, cli.seed);
    let d = Defaults::default();
    println!(
        "# MCSCEC experiments — {} instances per point, seed {}\n",
        cli.instances, cli.seed
    );

    match cli.command.as_str() {
        "fig2a" => emit_sweep(&figures::fig2a(&mc, &d), &cli.out_dir),
        "fig2b" => emit_sweep(&figures::fig2b(&mc, &d), &cli.out_dir),
        "fig2c" => emit_sweep(&figures::fig2c(&mc, &d), &cli.out_dir),
        "fig2d" => emit_sweep(&figures::fig2d(&mc, &d), &cli.out_dir),
        "fig2e" => emit_sweep(&figures::fig2e(&mc, &d), &cli.out_dir),
        "completion" => emit(
            &scec_experiments::ablation::completion_vs_r(5000, 25, 256, 10, cli.seed),
            "completion_vs_r",
            &cli.out_dir,
        ),
        "decode" => emit(
            &scec_experiments::ablation::decode_complexity(&[100, 500, 1000, 5000, 10000]),
            "decode_complexity",
            &cli.out_dir,
        ),
        "straggler" => emit(
            &scec_experiments::ablation::straggler_quorum(
                5000,
                1250,
                256,
                &[0, 625, 1250, 2500],
                cli.seed,
            ),
            "straggler_quorum",
            &cli.out_dir,
        ),
        "collusion" => emit(
            &scec_experiments::ablation::collusion_cost(5000, 250, &[1, 2, 3, 4, 5, 8]),
            "collusion_cost",
            &cli.out_dir,
        ),
        "throughput" => emit(
            &scec_experiments::throughput::throughput_table(
                &[100, 500, 1000, 5000],
                628, // the paper's HElib comparison uses 628-wide rows
                cli.seed,
            ),
            "throughput",
            &cli.out_dir,
        ),
        "security" => {
            let campaign = scec_experiments::security::run_campaign(
                50,
                16,
                10,
                cli.instances.min(200),
                cli.seed,
            );
            emit(&campaign.to_table(), "security_campaign", &cli.out_dir);
            if !campaign.is_clean() {
                eprintln!("SECURITY CAMPAIGN FAILED: {campaign:?}");
                return ExitCode::FAILURE;
            }
        }
        "claims" | "all" => {
            let sweeps = figures::all(&mc, &d);
            for sweep in &sweeps {
                emit_sweep(sweep, &cli.out_dir);
            }
            let v = claims::verdicts(&sweeps);
            println!("## Headline claim T1 (MCSCEC within 0.5% of LB at large parameters)\n");
            for (id, gap) in &v.lb_gap_at_largest {
                println!("* {id}: gap at largest point = {:.4}%", gap * 100.0);
            }
            println!("\nT1 {}", if v.t1_holds { "HOLDS" } else { "VIOLATED" });
            if cli.command == "all" {
                emit(
                    &scec_experiments::ablation::completion_vs_r(5000, 25, 256, 10, cli.seed),
                    "completion_vs_r",
                    &cli.out_dir,
                );
                emit(
                    &scec_experiments::ablation::decode_complexity(&[100, 500, 1000, 5000, 10000]),
                    "decode_complexity",
                    &cli.out_dir,
                );
                emit(
                    &scec_experiments::ablation::straggler_quorum(
                        5000,
                        1250,
                        256,
                        &[0, 625, 1250, 2500],
                        cli.seed,
                    ),
                    "straggler_quorum",
                    &cli.out_dir,
                );
                emit(
                    &scec_experiments::ablation::collusion_cost(5000, 250, &[1, 2, 3, 4, 5, 8]),
                    "collusion_cost",
                    &cli.out_dir,
                );
            }
        }
        other => {
            eprintln!("unknown command {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
