//! Ablations beyond the paper's figures (indexed A1–A4 in `DESIGN.md`).
//!
//! * [`completion_vs_r`] (A3) — end-to-end completion time as a function
//!   of `r` in the event simulator, quantifying Remark 1's claim that the
//!   per-device cap bounds completion time: small `r` spreads work, large
//!   `r` concentrates it.
//! * [`decode_complexity`] (A1, analytic half) — operation counts of the
//!   structured O(m) decoder vs generic Gaussian elimination
//!   (≈ (m+r)³/3 multiply-adds); the wall-clock half lives in the
//!   criterion bench `decode_ablation`.

use scec_coding::CodeDesign;
use scec_sim::event::{DeviceProfile, NetworkModel, ProtocolSimulator};
use scec_sim::InstanceGenerator;

use crate::table::{fmt_f64, Table};

/// Sweeps `r` across its feasible range and reports simulated completion
/// time (seconds) for each choice, with `points` grid values.
///
/// Devices are `default_edge` profiles with ±20% jitter. Two opposing
/// forces shape the curve: small `r` spreads compute thinly but waits on
/// the straggler of *many* jittered links, while large `r` concentrates
/// compute on two devices. Which end wins depends on the compute/latency
/// balance (for the paper-scale `m = 5000` with realistic widths, compute
/// dominates and completion grows with `r`).
///
/// # Panics
///
/// Panics when `m == 0` or `k < 2`.
pub fn completion_vs_r(m: usize, k: usize, width: usize, points: usize, seed: u64) -> Table {
    assert!(m >= 1 && k >= 2, "need m >= 1 and k >= 2");
    let mut gen = InstanceGenerator::from_seed(seed);
    let min_r = m.div_ceil(k - 1);
    let grid: Vec<usize> = if points <= 1 || min_r == m {
        vec![min_r]
    } else {
        (0..points)
            .map(|t| min_r + t * (m - min_r) / (points - 1))
            .collect()
    };
    let mut t = Table::new(vec![
        "r".into(),
        "devices".into(),
        "max_load".into(),
        "completion_time_s".into(),
    ]);
    for r in grid {
        let design = CodeDesign::new(m, r).expect("r in feasible range");
        let profiles: Vec<DeviceProfile> = (0..design.device_count())
            .map(|_| DeviceProfile::default_edge().jittered(0.2, gen.rng()))
            .collect();
        let model = NetworkModel::heterogeneous(profiles, 1e-9).expect("valid profiles");
        let report = ProtocolSimulator::new(model)
            .simulate(&design, width)
            .expect("model sized to design");
        t.push_row(vec![
            r.to_string(),
            design.device_count().to_string(),
            r.to_string(),
            fmt_f64(report.completion_time),
        ])
        .expect("fixed width");
    }
    t
}

/// A5: quorum latency with straggler redundancy. For each redundancy
/// level `s`, simulates a jittered fleet where one base device is 10×
/// slower and reports (a) the time to receive *all* rows (what the base
/// protocol must wait for) and (b) the time to receive any `m + r` rows
/// (what the straggler decoder waits for, with `s` extra rows on standby
/// devices).
///
/// # Panics
///
/// Panics when `m == 0` or `k < 2`.
pub fn straggler_quorum(m: usize, r: usize, width: usize, s_grid: &[usize], seed: u64) -> Table {
    assert!(m >= 1 && r >= 1, "need m >= 1 and r >= 1");
    let mut gen = InstanceGenerator::from_seed(seed);
    let design = CodeDesign::new(m, r).expect("feasible (m, r)");
    let base_devices = design.device_count();
    let mut t = Table::new(vec![
        "redundancy_s".into(),
        "standby_devices".into(),
        "wait_all_s".into(),
        "quorum_s".into(),
        "speedup".into(),
    ]);
    for &s in s_grid {
        // Loads: base design loads plus standby chunks of at most r rows.
        let mut loads: Vec<usize> = (1..=base_devices)
            .map(|j| design.device_load(j).expect("j in range"))
            .collect();
        let mut left = s;
        while left > 0 {
            let chunk = left.min(r);
            loads.push(chunk);
            left -= chunk;
        }
        // One slow base device (device 2 if it exists), others jittered.
        let profiles: Vec<DeviceProfile> = (0..loads.len())
            .map(|idx| {
                let mut p = DeviceProfile::default_edge().jittered(0.15, gen.rng());
                if idx == 1 {
                    p.per_op_time *= 10.0;
                    p.latency *= 10.0;
                }
                p
            })
            .collect();
        let model = NetworkModel::heterogeneous(profiles, 1e-9).expect("valid profiles");
        let report = ProtocolSimulator::new(model)
            .simulate_loads(&loads, m, width)
            .expect("model sized to loads");
        let wait_all = report.last_result;
        let quorum = report
            .time_to_rows(design.total_rows())
            .expect("enough rows in total");
        t.push_row(vec![
            s.to_string(),
            loads.len().saturating_sub(base_devices).to_string(),
            fmt_f64(wait_all),
            fmt_f64(quorum),
            fmt_f64(wait_all / quorum),
        ])
        .expect("fixed width");
    }
    t
}

/// A6: the price of collusion resistance. For each threshold `t`, reports
/// the `t`-private code's resource footprint (random rows `r = t·v`,
/// devices, total coded rows) and decoding cost estimate
/// (`r³/3 + m·r` multiply-adds) against the single-device design's
/// baseline (`m` subtractions).
pub fn collusion_cost(m: usize, v: usize, t_grid: &[usize]) -> Table {
    let mut table = Table::new(vec![
        "t".into(),
        "random_rows_r".into(),
        "total_rows".into(),
        "devices".into(),
        "decode_ops".into(),
        "decode_ops_vs_t1_design".into(),
    ]);
    for &t in t_grid {
        let r = t * v;
        let total = m + r;
        let devices = r.div_ceil(v) + m.div_ceil(v);
        let decode_ops = (r as f64).powi(3) / 3.0 + (m * r) as f64;
        table
            .push_row(vec![
                t.to_string(),
                r.to_string(),
                total.to_string(),
                devices.to_string(),
                fmt_f64(decode_ops),
                fmt_f64(decode_ops / m as f64),
            ])
            .expect("fixed width");
    }
    table
}

/// Operation counts of the two decoders across a grid of `m` values
/// (with the MCSCEC-optimal `r ≈ m/4` shape as a representative design).
pub fn decode_complexity(m_grid: &[usize]) -> Table {
    let mut t = Table::new(vec![
        "m".into(),
        "r".into(),
        "fast_subtractions".into(),
        "gaussian_mul_adds_approx".into(),
        "speedup_factor".into(),
    ]);
    for &m in m_grid {
        let r = (m / 4).max(1);
        let design = CodeDesign::new(m, r).expect("valid design");
        let fast = scec_coding::decode::fast_decode_op_count(&design);
        let n = design.total_rows() as f64;
        let gaussian = n * n * n / 3.0;
        t.push_row(vec![
            m.to_string(),
            r.to_string(),
            fast.to_string(),
            fmt_f64(gaussian),
            fmt_f64(gaussian / fast as f64),
        ])
        .expect("fixed width");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_table_has_grid_rows() {
        let t = completion_vs_r(40, 10, 16, 5, 1);
        assert_eq!(t.rows().len(), 5);
        assert_eq!(t.headers()[3], "completion_time_s");
        // r spans from the feasibility floor to m.
        assert_eq!(t.rows()[0][0], "5"); // ceil(40/9) = 5
        assert_eq!(t.rows()[4][0], "40");
        for row in t.rows() {
            let time: f64 = row[3].parse().unwrap();
            assert!(time > 0.0);
        }
    }

    #[test]
    fn completion_grows_with_r_when_compute_dominates() {
        // At paper scale (m = 5000, wide rows) per-device compute swamps
        // the link jitter, so concentrating load (larger r) must cost time.
        let t = completion_vs_r(5000, 25, 512, 5, 3);
        let first: f64 = t.rows()[0][3].parse().unwrap();
        let last: f64 = t.rows().last().unwrap()[3].parse().unwrap();
        assert!(last > first, "{last} <= {first}");
    }

    #[test]
    fn completion_degenerate_grid() {
        // m = 1, k = 2: only r = 1 feasible → a single row.
        let t = completion_vs_r(1, 2, 4, 5, 2);
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0][0], "1");
    }

    #[test]
    fn straggler_quorum_beats_waiting_for_all() {
        // With one 10x-slow device and enough redundancy to skip it, the
        // quorum time must be well below the wait-for-all time.
        let t = straggler_quorum(40, 10, 64, &[10, 20], 5);
        assert_eq!(t.rows().len(), 2);
        for row in t.rows() {
            let speedup: f64 = row[4].parse().unwrap();
            assert!(speedup > 1.5, "speedup {speedup} too small: {row:?}");
        }
    }

    #[test]
    fn straggler_without_redundancy_cannot_skip() {
        // s = 0: quorum requires every base row, so both times coincide.
        let t = straggler_quorum(40, 10, 64, &[0], 6);
        let wait_all: f64 = t.rows()[0][2].parse().unwrap();
        let quorum: f64 = t.rows()[0][3].parse().unwrap();
        assert!((wait_all - quorum).abs() < 1e-9);
    }

    #[test]
    fn collusion_cost_grows_with_t() {
        let t = collusion_cost(100, 5, &[1, 2, 4]);
        assert_eq!(t.rows().len(), 3);
        let r1: usize = t.rows()[0][1].parse().unwrap();
        let r4: usize = t.rows()[2][1].parse().unwrap();
        assert_eq!(r1, 5);
        assert_eq!(r4, 20);
        let ops1: f64 = t.rows()[0][4].parse().unwrap();
        let ops4: f64 = t.rows()[2][4].parse().unwrap();
        assert!(ops4 > ops1 * 4.0);
    }

    #[test]
    fn decode_complexity_scales_cubically() {
        let t = decode_complexity(&[8, 16, 32]);
        assert_eq!(t.rows().len(), 3);
        let s8: f64 = t.rows()[0][4].parse().unwrap();
        let s32: f64 = t.rows()[2][4].parse().unwrap();
        // Speedup factor grows superlinearly with m.
        assert!(s32 > 4.0 * s8, "{s32} vs {s8}");
    }

    #[test]
    #[should_panic(expected = "need m >= 1")]
    fn zero_m_panics() {
        let _ = completion_vs_r(0, 5, 4, 3, 1);
    }
}
