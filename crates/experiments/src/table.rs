//! Minimal table rendering: CSV and markdown, no external writer crates.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular results table.
///
/// # Example
///
/// ```
/// use scec_experiments::Table;
///
/// let mut t = Table::new(vec!["m".into(), "cost".into()]);
/// t.push_row(vec!["100".into(), "42.5".into()]).unwrap();
/// assert!(t.to_csv().starts_with("m,cost\n"));
/// assert!(t.to_markdown().contains("| m | cost |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns an error string when the row width differs from the header
    /// width.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<(), String> {
        if row.len() != self.headers.len() {
            return Err(format!(
                "row has {} cells, table has {} columns",
                row.len(),
                self.headers.len()
            ));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    let escaped = cell.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with 4 significant decimal places for table cells.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]).unwrap();
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["x".into()]);
        t.push_row(vec!["a,b".into()]).unwrap();
        t.push_row(vec!["he said \"hi\"".into()]).unwrap();
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["m".into(), "cost".into()]);
        t.push_row(vec!["10".into(), "3.5".into()]).unwrap();
        let md = t.to_markdown();
        assert!(md.starts_with("| m | cost |\n|---|---|\n"));
        assert!(md.contains("| 10 | 3.5 |"));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        assert!(t.push_row(vec!["1".into()]).is_err());
        assert!(t.rows().is_empty());
        assert_eq!(t.headers().len(), 2);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("scec_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("t.csv");
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["1".into()]).unwrap();
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456789), "1.2346");
        assert_eq!(fmt_f64(2.0), "2.0000");
    }
}
