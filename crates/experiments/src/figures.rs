//! The five sweeps of the paper's Fig. 2 (a)–(e).
//!
//! Defaults follow Sec. V exactly: `m = 5000`, `k = 25`, `c_max = 5`,
//! `µ = 5`, `σ = 1.25`, 1000 instances per point. Parameter grids cover
//! the ranges the figure axes span.

use scec_sim::CostDistribution;

use crate::runner::{AlgoCosts, MonteCarlo};
use crate::table::{fmt_f64, Table};

/// Paper defaults for the non-swept parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Defaults {
    /// Data rows `m`.
    pub m: usize,
    /// Fleet size `k`.
    pub k: usize,
    /// Uniform upper edge `c_max`.
    pub c_max: f64,
    /// Normal mean `µ`.
    pub mu: f64,
    /// Normal standard deviation `σ`.
    pub sigma: f64,
}

impl Default for Defaults {
    fn default() -> Self {
        Defaults {
            m: 5000,
            k: 25,
            c_max: 5.0,
            mu: 5.0,
            sigma: 1.25,
        }
    }
}

/// One completed sweep: the figure id, the swept parameter, and the mean
/// curves at each grid value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Figure identifier, e.g. `"fig2a"`.
    pub id: &'static str,
    /// The swept parameter's name, e.g. `"m"`.
    pub param: &'static str,
    /// `(parameter value, mean curves)` per grid point.
    pub points: Vec<(f64, AlgoCosts)>,
}

impl Sweep {
    /// Renders the sweep as a table (one row per grid value).
    pub fn to_table(&self) -> Table {
        let mut headers = vec![self.param.to_string()];
        headers.extend(AlgoCosts::labels().iter().map(|s| s.to_string()));
        let mut t = Table::new(headers);
        for (v, costs) in &self.points {
            let mut row = vec![trim_param(*v)];
            row.extend(costs.as_array().iter().map(|&c| fmt_f64(c)));
            t.push_row(row).expect("row width matches headers");
        }
        t
    }

    /// The curve values for one labeled algorithm across the sweep.
    ///
    /// # Panics
    ///
    /// Panics when `label` is not one of [`AlgoCosts::labels`].
    pub fn curve(&self, label: &str) -> Vec<f64> {
        let idx = AlgoCosts::labels()
            .iter()
            .position(|&l| l == label)
            .unwrap_or_else(|| panic!("unknown curve {label}"));
        self.points.iter().map(|(_, c)| c.as_array()[idx]).collect()
    }

    /// The swept parameter values.
    pub fn params(&self) -> Vec<f64> {
        self.points.iter().map(|(v, _)| *v).collect()
    }
}

fn trim_param(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Fig. 2(a): total cost vs the number of data rows `m`.
pub fn fig2a(mc: &MonteCarlo, d: &Defaults) -> Sweep {
    let grid = [10usize, 50, 100, 500, 1000, 5000, 10000];
    Sweep {
        id: "fig2a",
        param: "m",
        points: grid
            .iter()
            .map(|&m| {
                (
                    m as f64,
                    mc.run_point(m, d.k, CostDistribution::uniform(d.c_max)),
                )
            })
            .collect(),
    }
}

/// Fig. 2(b): total cost vs the number of edge devices `k`.
pub fn fig2b(mc: &MonteCarlo, d: &Defaults) -> Sweep {
    let grid = [5usize, 10, 15, 20, 25, 30, 40, 50];
    Sweep {
        id: "fig2b",
        param: "k",
        points: grid
            .iter()
            .map(|&k| {
                (
                    k as f64,
                    mc.run_point(d.m, k, CostDistribution::uniform(d.c_max)),
                )
            })
            .collect(),
    }
}

/// Fig. 2(c): total cost vs the uniform cost ceiling `c_max`.
pub fn fig2c(mc: &MonteCarlo, d: &Defaults) -> Sweep {
    let grid = [2.0f64, 3.0, 5.0, 10.0, 15.0, 20.0];
    Sweep {
        id: "fig2c",
        param: "c_max",
        points: grid
            .iter()
            .map(|&c_max| {
                (
                    c_max,
                    mc.run_point(d.m, d.k, CostDistribution::uniform(c_max)),
                )
            })
            .collect(),
    }
}

/// Fig. 2(d): total cost vs the normal spread `σ` — must show the
/// MaxNode/MinNode crossover.
pub fn fig2d(mc: &MonteCarlo, d: &Defaults) -> Sweep {
    let grid = [0.01f64, 0.1, 0.5, 1.0, 1.25, 1.5, 2.0, 2.5];
    Sweep {
        id: "fig2d",
        param: "sigma",
        points: grid
            .iter()
            .map(|&sigma| {
                (
                    sigma,
                    mc.run_point(d.m, d.k, CostDistribution::normal(d.mu, sigma)),
                )
            })
            .collect(),
    }
}

/// Fig. 2(e): total cost vs the normal mean `µ`.
pub fn fig2e(mc: &MonteCarlo, d: &Defaults) -> Sweep {
    let grid = [2.0f64, 3.0, 5.0, 8.0, 10.0, 15.0];
    Sweep {
        id: "fig2e",
        param: "mu",
        points: grid
            .iter()
            .map(|&mu| {
                (
                    mu,
                    mc.run_point(d.m, d.k, CostDistribution::normal(mu, d.sigma)),
                )
            })
            .collect(),
    }
}

/// Runs all five sweeps.
pub fn all(mc: &MonteCarlo, d: &Defaults) -> Vec<Sweep> {
    vec![
        fig2a(mc, d),
        fig2b(mc, d),
        fig2c(mc, d),
        fig2d(mc, d),
        fig2e(mc, d),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but real versions of the sweeps: shrink m/instances so the
    /// full grid logic still runs in test time.
    fn tiny() -> (MonteCarlo, Defaults) {
        (
            MonteCarlo::new(8, 123),
            Defaults {
                m: 60,
                k: 10,
                ..Defaults::default()
            },
        )
    }

    #[test]
    fn fig2a_shape_holds_downscaled() {
        let (mc, d) = tiny();
        // fig2a's full grid reaches m = 10^4; exercise the same sweep
        // logic on a small prefix via run_point directly.
        let grid = [10usize, 50, 100];
        let mut last = 0.0;
        for &m in &grid {
            let p = mc.run_point(m, d.k, scec_sim::CostDistribution::uniform(d.c_max));
            assert!(p.mcscec > last);
            last = p.mcscec;
            assert!(p.lower_bound <= p.mcscec + 1e-9);
        }
    }

    #[test]
    fn sweep_table_and_curves() {
        let (mc, d) = tiny();
        let sweep = fig2c(&mc, &d);
        assert_eq!(sweep.points.len(), 6);
        let t = sweep.to_table();
        assert_eq!(t.headers()[0], "c_max");
        assert_eq!(t.headers()[2], "MCSCEC");
        assert_eq!(t.rows().len(), 6);
        let curve = sweep.curve("MCSCEC");
        assert_eq!(curve.len(), 6);
        assert_eq!(sweep.params(), vec![2.0, 3.0, 5.0, 10.0, 15.0, 20.0]);
        // Costs grow with c_max.
        assert!(curve.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "unknown curve")]
    fn unknown_curve_panics() {
        let (mc, d) = tiny();
        let sweep = fig2e(&mc, &d);
        let _ = sweep.curve("nope");
    }

    #[test]
    fn sigma_sweep_shows_crossover_tendencies() {
        let (mc, d) = tiny();
        let sweep = fig2d(&mc, &d);
        let max_node = sweep.curve("MaxNode");
        let min_node = sweep.curve("MinNode");
        let mcscec = sweep.curve("MCSCEC");
        // At sigma ≈ 0, MaxNode ≈ MCSCEC (uniform fleet: use every device).
        assert!((max_node[0] - mcscec[0]).abs() / mcscec[0] < 0.02);
        // At large sigma MinNode gets closer to MCSCEC than MaxNode is.
        let last = sweep.points.len() - 1;
        let min_gap = (min_node[last] - mcscec[last]) / mcscec[last];
        let max_gap = (max_node[last] - mcscec[last]) / mcscec[last];
        assert!(min_gap < max_gap, "min_gap {min_gap} max_gap {max_gap}");
    }

    #[test]
    fn param_formatting() {
        assert_eq!(trim_param(5.0), "5");
        assert_eq!(trim_param(1.25), "1.25");
    }
}
