//! The paper's headline claims (Sec. I and Sec. V prose), computed from
//! the sweeps.
//!
//! * **T1** — MCSCEC's mean cost is within 0.5% of the lower bound when
//!   the parameters are large.
//! * **T2** — MCSCEC saves ≥ 43% / 18% / 13% vs MaxNode / MinNode / RNode
//!   at the large ends of the m / k / c_max sweeps, and the security
//!   premium over TAw/oS stays below ≈ 26% / 19% / 14% / 36% / 48% across
//!   the m / k / µ / c_max / σ sweeps.

use serde::{Deserialize, Serialize};

use crate::figures::Sweep;
use crate::table::{fmt_f64, Table};

/// Relative gaps at one sweep point, as fractions (0.26 = 26%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapReport {
    /// The swept parameter's value.
    pub param: f64,
    /// `(MCSCEC − LB) / LB`.
    pub gap_to_lower_bound: f64,
    /// `(MaxNode − MCSCEC) / MaxNode` — savings vs MaxNode.
    pub savings_vs_max_node: f64,
    /// `(MinNode − MCSCEC) / MinNode`.
    pub savings_vs_min_node: f64,
    /// `(RNode − MCSCEC) / RNode`.
    pub savings_vs_r_node: f64,
    /// `(MCSCEC − TAw/oS) / TAw/oS` — the price of security.
    pub security_premium: f64,
}

/// Computes per-point gap reports for a sweep.
pub fn gaps(sweep: &Sweep) -> Vec<GapReport> {
    sweep
        .points
        .iter()
        .map(|(param, c)| GapReport {
            param: *param,
            gap_to_lower_bound: (c.mcscec - c.lower_bound) / c.lower_bound,
            savings_vs_max_node: (c.max_node - c.mcscec) / c.max_node,
            savings_vs_min_node: (c.min_node - c.mcscec) / c.min_node,
            savings_vs_r_node: (c.r_node - c.mcscec) / c.r_node,
            security_premium: (c.mcscec - c.ta_without_security) / c.ta_without_security,
        })
        .collect()
}

/// Renders gap reports as a table (percent values).
pub fn gaps_table(sweep: &Sweep) -> Table {
    let mut t = Table::new(vec![
        sweep.param.to_string(),
        "gap_to_LB_%".into(),
        "savings_vs_MaxNode_%".into(),
        "savings_vs_MinNode_%".into(),
        "savings_vs_RNode_%".into(),
        "security_premium_%".into(),
    ]);
    for g in gaps(sweep) {
        t.push_row(vec![
            if g.param.fract() == 0.0 {
                format!("{}", g.param as i64)
            } else {
                format!("{}", g.param)
            },
            fmt_f64(g.gap_to_lower_bound * 100.0),
            fmt_f64(g.savings_vs_max_node * 100.0),
            fmt_f64(g.savings_vs_min_node * 100.0),
            fmt_f64(g.savings_vs_r_node * 100.0),
            fmt_f64(g.security_premium * 100.0),
        ])
        .expect("fixed width");
    }
    t
}

/// Verdicts on the paper's headline claims, judged on the *last* (largest)
/// point of each sweep as the paper's "sufficiently large" reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimVerdicts {
    /// T1: final-point gap to the lower bound, per sweep id.
    pub lb_gap_at_largest: Vec<(String, f64)>,
    /// Whether every final-point LB gap is under 0.5%.
    pub t1_holds: bool,
}

/// Evaluates claim T1 over a set of sweeps.
pub fn verdicts(sweeps: &[Sweep]) -> ClaimVerdicts {
    let lb_gap_at_largest: Vec<(String, f64)> = sweeps
        .iter()
        .map(|s| {
            let last = gaps(s).last().copied().expect("non-empty sweep");
            (s.id.to_string(), last.gap_to_lower_bound)
        })
        .collect();
    let t1_holds = lb_gap_at_largest.iter().all(|(_, g)| *g < 0.005);
    ClaimVerdicts {
        lb_gap_at_largest,
        t1_holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig2a, Defaults};
    use crate::runner::MonteCarlo;

    fn small_sweep() -> Sweep {
        // A real (downscaled) fig2a run: small instance count, small k.
        let mc = MonteCarlo::new(10, 77);
        let d = Defaults {
            k: 12,
            ..Defaults::default()
        };
        fig2a(&mc, &d)
    }

    #[test]
    fn gaps_are_well_signed() {
        let sweep = small_sweep();
        for g in gaps(&sweep) {
            assert!(g.gap_to_lower_bound >= -1e-9, "{g:?}");
            assert!(g.savings_vs_max_node >= -1e-9, "{g:?}");
            assert!(g.savings_vs_min_node >= -1e-9, "{g:?}");
            assert!(g.savings_vs_r_node >= -1e-9, "{g:?}");
            assert!(g.security_premium >= -1e-9, "{g:?}");
        }
    }

    #[test]
    fn t1_holds_on_downscaled_run() {
        // Even with modest instance counts the optimal algorithm sits on
        // the bound whenever divisibility allows; the mean gap at the
        // largest m must be tiny.
        let sweep = small_sweep();
        let v = verdicts(&[sweep]);
        assert_eq!(v.lb_gap_at_largest.len(), 1);
        assert!(
            v.lb_gap_at_largest[0].1 < 0.005,
            "gap {}",
            v.lb_gap_at_largest[0].1
        );
        assert!(v.t1_holds);
    }

    #[test]
    fn gaps_table_shape() {
        let sweep = small_sweep();
        let t = gaps_table(&sweep);
        assert_eq!(t.headers().len(), 6);
        assert_eq!(t.rows().len(), sweep.points.len());
        assert_eq!(t.headers()[1], "gap_to_LB_%");
    }
}
