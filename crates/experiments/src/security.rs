//! Empirical security campaign: attack every device of many random
//! deployments and report aggregate statistics.
//!
//! The paper proves Definition 2 symbolically (Theorem 3); this module
//! checks it *operationally* at scale: across `instances` random
//! deployments over GF(2⁶¹−1), the passive adversary must extract **zero**
//! pure-data combinations and find **every** candidate data matrix
//! consistent with each observation. As a true-positive control, each
//! instance also attacks a sabotaged variant (one device's random row
//! rewired) which the adversary must flag.

use scec_coding::CodeDesign;
use scec_core::{integrity::IntegrityKey, AllocationStrategy, ScecSystem};
use scec_linalg::Fp61;
use scec_sim::adversary::PassiveAdversary;
use scec_sim::{CostDistribution, InstanceGenerator};

use crate::table::Table;

/// Aggregate results of a security campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityCampaign {
    /// Deployments attacked.
    pub instances: usize,
    /// Device shares attacked in total.
    pub devices_attacked: usize,
    /// Pure-data combinations extracted from honest deployments
    /// (must be 0).
    pub leaks: usize,
    /// Distinguishing attacks that succeeded against honest deployments
    /// (must be 0).
    pub distinguished: usize,
    /// Sabotaged controls flagged by the adversary (must equal
    /// `instances`).
    pub sabotage_detected: usize,
    /// Byzantine-partial controls flagged by the Freivalds integrity key
    /// (must equal `instances`).
    pub byzantine_detected: usize,
}

impl SecurityCampaign {
    /// Whether the campaign matches the paper's security claim exactly.
    pub fn is_clean(&self) -> bool {
        self.leaks == 0
            && self.distinguished == 0
            && self.sabotage_detected == self.instances
            && self.byzantine_detected == self.instances
    }

    /// Renders as a one-row table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "instances".into(),
            "devices_attacked".into(),
            "leaks".into(),
            "distinguished".into(),
            "sabotage_detected".into(),
            "byzantine_detected".into(),
            "verdict".into(),
        ]);
        t.push_row(vec![
            self.instances.to_string(),
            self.devices_attacked.to_string(),
            self.leaks.to_string(),
            self.distinguished.to_string(),
            format!("{}/{}", self.sabotage_detected, self.instances),
            format!("{}/{}", self.byzantine_detected, self.instances),
            if self.is_clean() {
                "SECURE".into()
            } else {
                "LEAK".into()
            },
        ])
        .expect("fixed width");
        t
    }
}

/// Runs the campaign: `instances` random deployments of an `m × l` matrix
/// over `k`-device fleets, each fully attacked, plus one sabotage control
/// per instance.
///
/// # Panics
///
/// Panics when `m == 0`, `l == 0`, or `k < 2`.
pub fn run_campaign(m: usize, l: usize, k: usize, instances: usize, seed: u64) -> SecurityCampaign {
    assert!(m >= 1 && l >= 1 && k >= 2, "need m, l >= 1 and k >= 2");
    let mut gen = InstanceGenerator::from_seed(seed);
    let mut campaign = SecurityCampaign {
        instances,
        devices_attacked: 0,
        leaks: 0,
        distinguished: 0,
        sabotage_detected: 0,
        byzantine_detected: 0,
    };
    for _ in 0..instances {
        let fleet = gen.fleet(k, CostDistribution::uniform(5.0));
        let a = gen.data_matrix::<Fp61>(m, l);
        let system = ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, gen.rng())
            .expect("valid instance");
        let deployment = system.distribute(gen.rng()).expect("valid system");

        // Byzantine control: corrupt one partial, require the Freivalds
        // key to reject the decoded result.
        {
            let key = IntegrityKey::generate(&a, gen.rng()).expect("non-empty data");
            let x = gen.query::<Fp61>(l);
            let mut partials = deployment.partials(&x).expect("valid query");
            let slice = partials[0].as_mut_slice();
            slice[0] += Fp61::new(1);
            let y = deployment.recover(&partials).expect("decodes");
            if !key.verify(&x, &y).expect("shapes agree") {
                campaign.byzantine_detected += 1;
            }
        }

        let adversary = PassiveAdversary::new(system.design().clone()).with_candidates(2);
        for device in deployment.devices() {
            let verdict = adversary
                .attack(device.share(), gen.rng())
                .expect("attack runs");
            campaign.devices_attacked += 1;
            campaign.leaks += verdict.leaked_combinations;
            campaign.distinguished += verdict.candidates_tested - verdict.candidates_consistent;
        }

        // True-positive control: rewire one random-coefficient entry of a
        // small design so device 2 reuses R_0, and confirm detection.
        let design = CodeDesign::new(m.max(2), (m.max(2) / 2).max(1)).expect("valid design");
        if design.random_rows() >= 2 && design.device_count() >= 2 {
            let mut b = design.encoding_matrix::<Fp61>();
            let mm = design.data_rows();
            // Coded row for A_1 normally mixes R_{1 mod r}; rewire to R_0.
            let row = design.random_rows() + 1;
            let original_random_col = mm + (1 % design.random_rows());
            b.set(row, original_random_col, Fp61::new(0))
                .expect("in range");
            b.set(row, mm, Fp61::new(1)).expect("in range");
            // Re-encode honestly... the sabotage is in B, so compute the
            // observation directly.
            let a2 = gen.data_matrix::<Fp61>(mm, l);
            let randomness = gen.data_matrix::<Fp61>(design.random_rows(), l);
            let t = a2.vstack(&randomness).expect("widths agree");
            let range = design.device_row_range(2).expect("device 2 exists");
            let block = b.row_block(range.start, range.end).expect("in range");
            let observed = block.matmul(&t).expect("shapes agree");
            let adversary2 = PassiveAdversary::new(design);
            let verdict = adversary2
                .attack_observation(2, &block, &observed, gen.rng())
                .expect("attack runs");
            if !verdict.is_information_theoretic_secure() {
                campaign.sabotage_detected += 1;
            }
        } else {
            // Degenerate sizes cannot host the sabotage; count as detected
            // so tiny campaigns stay meaningful.
            campaign.sabotage_detected += 1;
        }
    }
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_clean_at_small_scale() {
        let c = run_campaign(6, 4, 5, 10, 99);
        assert_eq!(c.instances, 10);
        assert!(c.devices_attacked >= 20);
        assert!(c.is_clean(), "{c:?}");
    }

    #[test]
    fn sabotage_control_requires_detection() {
        let mut c = run_campaign(6, 4, 5, 3, 1);
        assert!(c.is_clean());
        c.sabotage_detected = 0;
        assert!(!c.is_clean());
        c.sabotage_detected = c.instances;
        c.leaks = 1;
        assert!(!c.is_clean());
        c.leaks = 0;
        c.byzantine_detected = 0;
        assert!(!c.is_clean());
    }

    #[test]
    fn table_rendering() {
        let c = run_campaign(4, 3, 4, 2, 7);
        let t = c.to_table();
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0][6], "SECURE");
    }

    #[test]
    #[should_panic(expected = "need m, l >= 1")]
    fn zero_m_panics() {
        let _ = run_campaign(0, 3, 4, 1, 1);
    }
}
