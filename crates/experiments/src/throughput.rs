//! Wall-clock throughput of the pipeline stages.
//!
//! Criterion gives statistically careful numbers (see `crates/bench`);
//! this module gives the *table* version for `EXPERIMENTS.md`: one pass
//! over an `m`-grid timing encode, device compute, and both decoders, in
//! the same process. It also grounds the paper's motivation that linear
//! coding beats homomorphic encryption by orders of magnitude: the
//! paper's HElib citation reports ~2.2 s for a 628×628 matrix–vector
//! multiply; the secure coded pipeline below does the *entire* round in
//! milliseconds at larger sizes.

use std::time::Instant;

use scec_coding::{decode, CodeDesign, Encoder};
use scec_linalg::{Fp61, Vector};
use scec_sim::InstanceGenerator;

use crate::table::{fmt_f64, Table};

/// Times one `(encode, device compute, fast decode, general decode)` pass
/// for a given `m` (with `r = m/4`, width `l`).
fn time_point(m: usize, l: usize, gen: &mut InstanceGenerator) -> [f64; 4] {
    let r = (m / 4).max(1);
    let design = CodeDesign::new(m, r).expect("valid design");
    let a = gen.data_matrix::<Fp61>(m, l);
    let x = gen.query::<Fp61>(l);

    let t0 = Instant::now();
    let store = Encoder::new(design.clone())
        .encode(&a, gen.rng())
        .expect("valid shapes");
    let encode_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let partials: Vec<Vector<Fp61>> = store
        .shares()
        .iter()
        .map(|s| s.compute(&x).expect("valid width"))
        .collect();
    let compute_s = t0.elapsed().as_secs_f64();
    let btx = decode::stack_partials(&partials);

    let t0 = Instant::now();
    let y = decode::decode_fast(&design, &btx).expect("valid length");
    let fast_s = t0.elapsed().as_secs_f64();
    assert_eq!(y, a.matvec(&x).expect("valid shapes"));

    // The general decoder materializes B and eliminates: only run it at
    // sizes where O((m+r)^3) stays sub-second.
    let general_s = if m <= 1000 {
        let b = design.encoding_matrix::<Fp61>();
        let t0 = Instant::now();
        let y2 = decode::decode_general(&design, &b, &btx).expect("full rank");
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(y2, y);
        elapsed
    } else {
        f64::NAN
    };
    [encode_s, compute_s, fast_s, general_s]
}

/// Builds the throughput table over an `m` grid.
pub fn throughput_table(m_grid: &[usize], l: usize, seed: u64) -> Table {
    let mut gen = InstanceGenerator::from_seed(seed);
    let mut t = Table::new(vec![
        "m".into(),
        "encode_ms".into(),
        "device_compute_ms".into(),
        "fast_decode_ms".into(),
        "general_decode_ms".into(),
    ]);
    for &m in m_grid {
        let [encode, compute, fast, general] = time_point(m, l, &mut gen);
        t.push_row(vec![
            m.to_string(),
            fmt_f64(encode * 1e3),
            fmt_f64(compute * 1e3),
            fmt_f64(fast * 1e3),
            if general.is_nan() {
                "-".into()
            } else {
                fmt_f64(general * 1e3)
            },
        ])
        .expect("fixed width");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_grid_rows_and_sane_values() {
        let t = throughput_table(&[50, 100], 32, 3);
        assert_eq!(t.rows().len(), 2);
        for row in t.rows() {
            let fast: f64 = row[3].parse().unwrap();
            let general: f64 = row[4].parse().unwrap();
            assert!(fast >= 0.0);
            // Fast decode must beat Gaussian elimination.
            assert!(fast < general, "fast {fast} !< general {general}");
        }
    }

    #[test]
    fn large_m_skips_general_decoder() {
        let t = throughput_table(&[1200], 8, 5);
        assert_eq!(t.rows()[0][4], "-");
    }
}
