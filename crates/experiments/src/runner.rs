//! Monte-Carlo evaluation machinery.
//!
//! Every point of every figure is the average of `instances` random
//! fleets. Instances are sharded deterministically across worker threads
//! (crossbeam scoped threads), so results are identical regardless of the
//! machine's core count.

use rand::Rng;
use serde::{Deserialize, Serialize};

use scec_allocation::{baselines, bound, ta, EdgeFleet};
use scec_sim::{CostDistribution, InstanceGenerator};

/// Mean total cost of each curve at one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AlgoCosts {
    /// Theorem 1's lower bound `c^L` (not an algorithm — a floor).
    pub lower_bound: f64,
    /// The optimal scheme (TA1 ≡ TA2 + the structured code).
    pub mcscec: f64,
    /// The insecure floor `TAw/oS`.
    pub ta_without_security: f64,
    /// Smallest feasible `r` (most devices).
    pub max_node: f64,
    /// `r = m` (two devices).
    pub min_node: f64,
    /// Uniformly random feasible `r`.
    pub r_node: f64,
}

impl AlgoCosts {
    /// Component-wise sum (used to accumulate across instances).
    pub fn accumulate(&mut self, other: &AlgoCosts) {
        self.lower_bound += other.lower_bound;
        self.mcscec += other.mcscec;
        self.ta_without_security += other.ta_without_security;
        self.max_node += other.max_node;
        self.min_node += other.min_node;
        self.r_node += other.r_node;
    }

    /// Component-wise division by a count.
    pub fn scale_down(&mut self, n: f64) {
        self.lower_bound /= n;
        self.mcscec /= n;
        self.ta_without_security /= n;
        self.max_node /= n;
        self.min_node /= n;
        self.r_node /= n;
    }

    /// The six values in the canonical column order
    /// `[LB, MCSCEC, TAw/oS, MaxNode, MinNode, RNode]`.
    pub fn as_array(&self) -> [f64; 6] {
        [
            self.lower_bound,
            self.mcscec,
            self.ta_without_security,
            self.max_node,
            self.min_node,
            self.r_node,
        ]
    }

    /// Canonical column labels matching [`AlgoCosts::as_array`].
    pub fn labels() -> [&'static str; 6] {
        ["LB", "MCSCEC", "TAw/oS", "MaxNode", "MinNode", "RNode"]
    }
}

/// Evaluates every curve on one concrete fleet.
///
/// # Panics
///
/// Panics when `m == 0` (figure grids never produce that).
pub fn evaluate_instance<R: Rng + ?Sized>(m: usize, fleet: &EdgeFleet, rng: &mut R) -> AlgoCosts {
    AlgoCosts {
        lower_bound: bound::lower_bound(m, fleet).expect("m >= 1"),
        mcscec: ta::ta1(m, fleet).expect("m >= 1").total_cost(),
        ta_without_security: baselines::ta_without_security(m, fleet)
            .expect("m >= 1")
            .total_cost(),
        max_node: baselines::max_node(m, fleet).expect("m >= 1").total_cost(),
        min_node: baselines::min_node(m, fleet).expect("m >= 1").total_cost(),
        r_node: baselines::r_node(m, fleet, rng)
            .expect("m >= 1")
            .total_cost(),
    }
}

/// Deterministic, parallel Monte-Carlo averaging.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    instances: usize,
    seed: u64,
}

impl MonteCarlo {
    /// Creates a runner averaging `instances` fleets per point, seeded for
    /// reproducibility.
    pub fn new(instances: usize, seed: u64) -> Self {
        assert!(instances >= 1, "need at least one instance");
        MonteCarlo { instances, seed }
    }

    /// The number of instances averaged per point.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// Averages all curves over random fleets of `k` devices with unit
    /// costs from `dist` and data size `m`.
    pub fn run_point(&self, m: usize, k: usize, dist: CostDistribution) -> AlgoCosts {
        // Deterministic sharding: fork one generator per shard from a
        // master seeded by (seed, m, k) so points are independent.
        let master_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((m as u64) << 24)
            .wrapping_add(k as u64);
        let mut master = InstanceGenerator::from_seed(master_seed);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(self.instances);
        let base = self.instances / threads;
        let extra = self.instances % threads;
        let shards: Vec<(usize, InstanceGenerator)> = (0..threads)
            .map(|t| (base + usize::from(t < extra), master.fork()))
            .collect();

        let mut total = AlgoCosts::default();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(count, mut gen)| {
                    scope.spawn(move |_| {
                        let mut acc = AlgoCosts::default();
                        for _ in 0..count {
                            let fleet = gen.fleet(k, dist);
                            let costs = evaluate_instance(m, &fleet, gen.rng());
                            acc.accumulate(&costs);
                        }
                        acc
                    })
                })
                .collect();
            for h in handles {
                total.accumulate(&h.join().expect("worker panicked"));
            }
        })
        .expect("scope panicked");
        total.scale_down(self.instances as f64);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn instance_ordering_invariants() {
        let mut rng = StdRng::seed_from_u64(1);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let c = evaluate_instance(50, &fleet, &mut rng);
        assert!(c.lower_bound <= c.mcscec + 1e-9);
        assert!(c.mcscec <= c.max_node + 1e-9);
        assert!(c.mcscec <= c.min_node + 1e-9);
        assert!(c.mcscec <= c.r_node + 1e-9);
        assert!(c.ta_without_security <= c.mcscec + 1e-9);
    }

    #[test]
    fn run_point_is_deterministic() {
        let mc = MonteCarlo::new(20, 42);
        let a = mc.run_point(100, 10, CostDistribution::uniform(5.0));
        let b = mc.run_point(100, 10, CostDistribution::uniform(5.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_points() {
        let a = MonteCarlo::new(20, 1).run_point(100, 10, CostDistribution::uniform(5.0));
        let b = MonteCarlo::new(20, 2).run_point(100, 10, CostDistribution::uniform(5.0));
        assert_ne!(a, b);
    }

    #[test]
    fn mean_preserves_ordering() {
        let mc = MonteCarlo::new(50, 3);
        let p = mc.run_point(200, 15, CostDistribution::normal(5.0, 1.25));
        assert!(p.lower_bound <= p.mcscec + 1e-9);
        assert!(p.mcscec <= p.max_node + 1e-9);
        assert!(p.mcscec <= p.min_node + 1e-9);
        assert!(p.mcscec <= p.r_node + 1e-9);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = AlgoCosts {
            lower_bound: 1.0,
            mcscec: 2.0,
            ta_without_security: 3.0,
            max_node: 4.0,
            min_node: 5.0,
            r_node: 6.0,
        };
        let b = a;
        a.accumulate(&b);
        a.scale_down(2.0);
        assert_eq!(a, b);
        assert_eq!(a.as_array(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(AlgoCosts::labels()[1], "MCSCEC");
    }

    #[test]
    fn single_instance_single_thread() {
        let mc = MonteCarlo::new(1, 9);
        let p = mc.run_point(10, 3, CostDistribution::uniform(2.0));
        assert!(p.mcscec > 0.0);
        assert_eq!(mc.instances(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let _ = MonteCarlo::new(0, 1);
    }
}
