//! Deadline-aware task allocation.
//!
//! The paper optimizes cost alone and notes (Remark 1) that the
//! per-device load cap `V(B_j) ≤ r` also bounds completion time. This
//! module closes the loop: among all feasible `r` (Theorem 2's range),
//! find the **cheapest allocation whose simulated completion time meets a
//! deadline**. Cost comes from the allocation layer's canonical-plan
//! formula; time comes from the discrete-event protocol simulation over
//! the fleet's timing profiles.

use serde::{Deserialize, Serialize};

use scec_allocation::{ta, AllocationPlan, EdgeFleet};
use scec_coding::CodeDesign;

use crate::error::{Error, Result};
use crate::event::{DeviceProfile, NetworkModel, ProtocolSimulator};

/// The outcome of deadline-aware planning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePlan {
    /// Chosen number of random rows.
    pub r: usize,
    /// Participating devices `i = ⌈(m+r)/r⌉`.
    pub devices: usize,
    /// The allocation's total cost `Σ V(B_j)·c_j`.
    pub total_cost: f64,
    /// Simulated completion time, seconds.
    pub completion_time: f64,
    /// The unconstrained optimum's cost, for reporting the premium paid
    /// for the deadline.
    pub unconstrained_cost: f64,
}

impl DeadlinePlan {
    /// Relative extra cost over the unconstrained optimum
    /// (`0.0` when the deadline is loose enough not to bind).
    pub fn deadline_premium(&self) -> f64 {
        (self.total_cost - self.unconstrained_cost) / self.unconstrained_cost
    }
}

/// Plans allocations under a completion-time deadline.
///
/// `profiles[p]` is the timing profile of the `p`-th **cheapest** device
/// (aligned with the fleet's sorted order), so an allocation using `i`
/// devices is simulated over `profiles[..i]`.
///
/// # Example
///
/// ```
/// use scec_allocation::EdgeFleet;
/// use scec_sim::event::DeviceProfile;
/// use scec_sim::planner::DeadlinePlanner;
///
/// let fleet = EdgeFleet::from_unit_costs(vec![1.0, 2.0, 3.0, 4.0, 5.0])?;
/// let profiles = vec![DeviceProfile::default_edge(); 5];
/// let planner = DeadlinePlanner::new(&fleet, &profiles, 1e-9)?;
/// let plan = planner.plan(100, 64, 1.0)?; // a loose 1-second deadline
/// // Loose deadlines reproduce the unconstrained optimum.
/// assert!(plan.deadline_premium() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeadlinePlanner<'a> {
    fleet: &'a EdgeFleet,
    profiles: &'a [DeviceProfile],
    user_per_op_time: f64,
}

impl<'a> DeadlinePlanner<'a> {
    /// Creates a planner.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DeviceCountMismatch`] when fewer profiles than
    /// fleet devices are supplied, or [`Error::InvalidTiming`] for bad
    /// profiles.
    pub fn new(
        fleet: &'a EdgeFleet,
        profiles: &'a [DeviceProfile],
        user_per_op_time: f64,
    ) -> Result<Self> {
        if profiles.len() < fleet.len() {
            return Err(Error::DeviceCountMismatch {
                model: profiles.len(),
                design: fleet.len(),
            });
        }
        for p in profiles {
            p.validate()?;
        }
        if !user_per_op_time.is_finite() || user_per_op_time < 0.0 {
            return Err(Error::InvalidTiming {
                what: "user_per_op_time",
                value: user_per_op_time,
            });
        }
        Ok(DeadlinePlanner {
            fleet,
            profiles,
            user_per_op_time,
        })
    }

    /// Simulated completion time of the canonical allocation for a given
    /// `r`.
    ///
    /// # Errors
    ///
    /// Propagates simulation-model failures (cannot occur for feasible
    /// `r` once the planner is constructed).
    pub fn completion_for(&self, m: usize, width: usize, r: usize) -> Result<f64> {
        let design = CodeDesign::new(m, r).map_err(|_| Error::DeviceCountMismatch {
            model: self.profiles.len(),
            design: 0,
        })?;
        let i = design.device_count();
        let model =
            NetworkModel::heterogeneous(self.profiles[..i].to_vec(), self.user_per_op_time)?;
        let report = ProtocolSimulator::new(model).simulate(&design, width)?;
        Ok(report.completion_time)
    }

    /// Finds the cheapest feasible allocation completing within
    /// `deadline` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DeadlineUnreachable`] (carrying the best
    /// achievable time) when no feasible `r` meets the deadline.
    pub fn plan(&self, m: usize, width: usize, deadline: f64) -> Result<DeadlinePlan> {
        let k = self.fleet.len();
        let min_r = m.div_ceil(k - 1);
        let unconstrained = ta::ta1(m, self.fleet).map_err(|_| Error::DeviceCountMismatch {
            model: k,
            design: 0,
        })?;
        let mut best: Option<DeadlinePlan> = None;
        let mut fastest = f64::INFINITY;
        for r in min_r..=m {
            let completion = self.completion_for(m, width, r)?;
            fastest = fastest.min(completion);
            if completion > deadline {
                continue;
            }
            let plan = AllocationPlan::canonical(m, r, self.fleet).expect("r in feasible range");
            let candidate = DeadlinePlan {
                r,
                devices: plan.device_count(),
                total_cost: plan.total_cost(),
                completion_time: completion,
                unconstrained_cost: unconstrained.total_cost(),
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.total_cost < b.total_cost,
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or(Error::DeadlineUnreachable { deadline, fastest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EdgeFleet, Vec<DeviceProfile>) {
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        // Homogeneous compute-bound profiles so completion is monotone in
        // the per-device load.
        let profile = DeviceProfile {
            latency: 1e-4,
            per_value_time: 1e-8,
            per_op_time: 1e-6,
        };
        (fleet, vec![profile; 6])
    }

    #[test]
    fn loose_deadline_reproduces_the_unconstrained_optimum() {
        let (fleet, profiles) = setup();
        let planner = DeadlinePlanner::new(&fleet, &profiles, 1e-9).unwrap();
        let plan = planner.plan(60, 32, 10.0).unwrap();
        let opt = ta::ta1(60, &fleet).unwrap();
        assert!((plan.total_cost - opt.total_cost()).abs() < 1e-9);
        assert!(plan.deadline_premium().abs() < 1e-12);
    }

    #[test]
    fn tight_deadline_forces_more_devices_at_higher_cost() {
        let (fleet, profiles) = setup();
        let planner = DeadlinePlanner::new(&fleet, &profiles, 1e-9).unwrap();
        let m = 60;
        let width = 32;
        // Unconstrained optimum for an increasing-cost fleet concentrates
        // load; find its completion time, then demand strictly better.
        let opt = ta::ta1(m, &fleet).unwrap();
        let opt_time = planner.completion_for(m, width, opt.random_rows()).unwrap();
        let fastest = (m.div_ceil(fleet.len() - 1)..=m)
            .map(|r| planner.completion_for(m, width, r).unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(fastest < opt_time, "no room for a binding deadline");
        let deadline = fastest * 1.05;
        let plan = planner.plan(m, width, deadline).unwrap();
        assert!(plan.completion_time <= deadline);
        assert!(plan.total_cost >= opt.total_cost() - 1e-9);
        assert!(plan.devices >= opt.device_count());
        assert!(plan.deadline_premium() >= 0.0);
    }

    #[test]
    fn impossible_deadline_reports_fastest() {
        let (fleet, profiles) = setup();
        let planner = DeadlinePlanner::new(&fleet, &profiles, 1e-9).unwrap();
        match planner.plan(60, 32, 1e-12) {
            Err(Error::DeadlineUnreachable { fastest, .. }) => {
                assert!(fastest > 1e-12);
            }
            other => panic!("expected DeadlineUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn validation() {
        let (fleet, profiles) = setup();
        assert!(DeadlinePlanner::new(&fleet, &profiles[..3], 1e-9).is_err());
        assert!(DeadlinePlanner::new(&fleet, &profiles, f64::NAN).is_err());
        let mut bad = profiles.clone();
        bad[0].latency = -1.0;
        assert!(DeadlinePlanner::new(&fleet, &bad, 1e-9).is_err());
    }
}
