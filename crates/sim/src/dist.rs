//! The unit-cost distributions of the paper's evaluation.
//!
//! Sec. V draws device unit costs from either `U(1, c_max)` or
//! `N(µ, σ²)`. Costs must stay strictly positive (the optimality analysis
//! requires `c_j > 0`), so normal samples are re-drawn until positive —
//! with the paper's default `µ = 5`, truncation is negligible even at
//! `σ = 2.5`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over device unit costs.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use scec_sim::CostDistribution;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let c = CostDistribution::uniform(5.0).sample(&mut rng);
/// assert!((1.0..5.0).contains(&c));
/// let n = CostDistribution::normal(5.0, 1.25).sample(&mut rng);
/// assert!(n > 0.0); // truncated positive
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CostDistribution {
    /// Uniform on `[min, max)` — the paper's `U(1, c_max)`.
    Uniform {
        /// Inclusive lower edge (the paper fixes this at 1).
        min: f64,
        /// Exclusive upper edge `c_max`.
        max: f64,
    },
    /// Normal `N(mu, sigma²)` truncated to positive values.
    Normal {
        /// Mean `µ`.
        mu: f64,
        /// Standard deviation `σ`.
        sigma: f64,
    },
}

impl CostDistribution {
    /// The paper's uniform family with `min = 1`.
    pub fn uniform(c_max: f64) -> Self {
        CostDistribution::Uniform {
            min: 1.0,
            max: c_max,
        }
    }

    /// The paper's normal family.
    pub fn normal(mu: f64, sigma: f64) -> Self {
        CostDistribution::Normal { mu, sigma }
    }

    /// Draws one unit cost.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are degenerate (`max <= min`,
    /// `sigma < 0`, or a non-positive `mu` that makes truncation
    /// non-terminating in practice).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            CostDistribution::Uniform { min, max } => {
                assert!(max > min && min > 0.0, "need 0 < min < max");
                rng.gen_range(min..max)
            }
            CostDistribution::Normal { mu, sigma } => {
                assert!(sigma >= 0.0, "sigma must be non-negative");
                assert!(mu > 0.0, "mu must be positive for truncated sampling");
                if sigma == 0.0 {
                    return mu;
                }
                // Box–Muller with rejection of non-positive samples.
                loop {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    let v = mu + sigma * z;
                    if v > 0.0 {
                        return v;
                    }
                }
            }
        }
    }

    /// Draws `n` unit costs.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl std::fmt::Display for CostDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostDistribution::Uniform { min, max } => write!(f, "U({min}, {max})"),
            CostDistribution::Normal { mu, sigma } => write!(f, "N({mu}, {sigma}^2)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = CostDistribution::uniform(5.0);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = CostDistribution::uniform(5.0);
        let n = 20_000;
        let mean: f64 = d.sample_many(n, &mut rng).iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = CostDistribution::normal(5.0, 1.25);
        let n = 50_000;
        let xs = d.sample_many(n, &mut rng);
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 1.25f64.powi(2)).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_is_truncated_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        // Aggressive sigma: raw normal would often go negative.
        let d = CostDistribution::normal(1.0, 2.0);
        for _ in 0..5000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = CostDistribution::normal(4.2, 0.0);
        assert_eq!(d.sample(&mut rng), 4.2);
    }

    #[test]
    fn display() {
        assert_eq!(CostDistribution::uniform(5.0).to_string(), "U(1, 5)");
        assert_eq!(
            CostDistribution::normal(5.0, 1.25).to_string(),
            "N(5, 1.25^2)"
        );
    }

    #[test]
    #[should_panic(expected = "0 < min < max")]
    fn degenerate_uniform_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = CostDistribution::Uniform { min: 5.0, max: 1.0 }.sample(&mut rng);
    }

    #[test]
    #[should_panic(expected = "mu must be positive")]
    fn nonpositive_mu_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = CostDistribution::normal(0.0, 1.0).sample(&mut rng);
    }
}
