//! The paper's attack model: a passive, non-colluding eavesdropper on one
//! edge device.
//!
//! The attacker knows the public code structure (the coefficient block
//! `B_j` — coding coefficients are never secret in linear CDC) and
//! observes everything stored on its device: the coded payload `B_j T`.
//! It mounts two attacks:
//!
//! 1. **Span extraction** — look for a non-zero combination `u` with
//!    `u·B_j ∈ L(λ̄)`: then `u · (B_j T) = u'·A` reveals a linear
//!    combination of pure data rows. The number of independent such
//!    combinations is `dim(L(B_j) ∩ L(λ̄))`.
//! 2. **Distinguishing / simulatability** — propose alternative data
//!    matrices `A'` and check whether the observation is consistent with
//!    them (i.e. whether randomness `R'` exists with
//!    `B_j·[A'; R'] = B_j T`). If *every* candidate is consistent, the
//!    observation carries zero information about `A`:
//!    `H(A | B_j T) = H(A)` — the paper's Definition 2.
//!
//! Over the finite field [`Fp61`](scec_linalg::Fp61) both attacks are
//! exact; over `f64` they hold up to numerical tolerance.

use rand::{rngs::StdRng, Rng, SeedableRng};

use scec_coding::{CodeDesign, DeviceShare};
use scec_linalg::{gauss, span, Matrix, Scalar};

use crate::error::{Error, Result};

/// Outcome of attacking one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackVerdict {
    /// The attacked device (1-based).
    pub device: usize,
    /// `dim(L(B_j) ∩ L(λ̄))`: independent pure-data combinations the
    /// device can derive. Zero for a secure code.
    pub leaked_combinations: usize,
    /// Alternative data matrices tested in the distinguishing attack.
    pub candidates_tested: usize,
    /// How many of them were consistent with the observation. Equal to
    /// `candidates_tested` for a secure code.
    pub candidates_consistent: usize,
}

impl AttackVerdict {
    /// Whether the device learned nothing: no leaked combinations and
    /// every alternative data matrix was simulatable.
    pub fn is_information_theoretic_secure(&self) -> bool {
        self.leaked_combinations == 0 && self.candidates_consistent == self.candidates_tested
    }
}

/// Outcome of attacking a coalition of devices jointly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalitionVerdict {
    /// The coalition's device indices.
    pub members: Vec<usize>,
    /// Independent pure-data combinations the coalition derives.
    pub leaked_combinations: usize,
    /// Alternative data matrices tested.
    pub candidates_tested: usize,
    /// How many were consistent with the joint observation.
    pub candidates_consistent: usize,
}

impl CoalitionVerdict {
    /// Whether the coalition learned nothing.
    pub fn is_information_theoretic_secure(&self) -> bool {
        self.leaked_combinations == 0 && self.candidates_consistent == self.candidates_tested
    }
}

/// A passive eavesdropper bound to a code design.
///
/// See the [crate-level example](crate) for auditing a full deployment.
#[derive(Debug, Clone)]
pub struct PassiveAdversary {
    design: Option<CodeDesign>,
    m: usize,
    r: usize,
    candidates: usize,
}

impl PassiveAdversary {
    /// Creates an adversary that tests 4 alternative data matrices per
    /// attack (adjust with [`with_candidates`](Self::with_candidates)).
    pub fn new(design: CodeDesign) -> Self {
        let (m, r) = (design.data_rows(), design.random_rows());
        PassiveAdversary {
            design: Some(design),
            m,
            r,
            candidates: 4,
        }
    }

    /// Creates an adversary for arbitrary `(m, r)` coding dimensions —
    /// e.g. to attack a [`scec_coding::collusion::TPrivateCode`], whose
    /// parameters need not form a structured [`CodeDesign`]. Only the
    /// observation-based attacks ([`attack_observation`],
    /// [`attack_coalition`]) are available.
    ///
    /// [`attack_observation`]: Self::attack_observation
    /// [`attack_coalition`]: Self::attack_coalition
    pub fn for_dimensions(m: usize, r: usize) -> Self {
        PassiveAdversary {
            design: None,
            m,
            r,
            candidates: 4,
        }
    }

    /// Sets the number of alternative data matrices tried by the
    /// distinguishing attack.
    pub fn with_candidates(mut self, candidates: usize) -> Self {
        self.candidates = candidates;
        self
    }

    /// Attacks a device share produced by the structured design.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when the share's device index is outside
    /// the design, or propagates linear-algebra failures.
    pub fn attack<F: Scalar, R: Rng + ?Sized>(
        &self,
        share: &DeviceShare<F>,
        rng: &mut R,
    ) -> Result<AttackVerdict> {
        let design = self.design.as_ref().ok_or(Error::MissingDesign)?;
        let block = design.device_block::<F>(share.device())?;
        self.attack_observation(share.device(), &block, share.coded(), rng)
    }

    /// Attacks a raw observation under an explicit coefficient block —
    /// also covers dense variants ([`scec_coding::verify::densify`]) and
    /// deliberately broken codes in tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when the block and observation
    /// disagree on the row count, or propagates linear-algebra failures.
    pub fn attack_observation<F: Scalar, R: Rng + ?Sized>(
        &self,
        device: usize,
        block: &Matrix<F>,
        observed: &Matrix<F>,
        rng: &mut R,
    ) -> Result<AttackVerdict> {
        if block.nrows() != observed.nrows() {
            return Err(Error::ShapeMismatch {
                what: "coefficient block vs observation",
                lhs: block.shape(),
                rhs: observed.shape(),
            });
        }
        let (m, r) = (self.m, self.r);
        if block.ncols() != m + r {
            return Err(Error::ShapeMismatch {
                what: "coefficient block width vs design",
                lhs: block.shape(),
                rhs: (block.nrows(), m + r),
            });
        }

        // Attack 1: span extraction.
        let lambda = span::data_span_basis::<F>(m, r);
        let leaked = span::intersection_dim(block, &lambda);

        // Attack 2: distinguishing. B_j = [D | N]; the observation is
        // W = D·A + N·R. A' is consistent iff N·R' = W − D·A' is solvable.
        let rows = block.nrows();
        let d_block = block.submatrix(0..rows, 0..m)?;
        let n_block = block.submatrix(0..rows, m..m + r)?;
        let mut consistent = 0;
        for _ in 0..self.candidates {
            let alt = Matrix::<F>::random(m, observed.ncols(), rng);
            let rhs = observed.sub(&d_block.matmul(&alt)?)?;
            if gauss::solve_rectangular(&n_block, &rhs).is_ok() {
                consistent += 1;
            }
        }
        Ok(AttackVerdict {
            device,
            leaked_combinations: leaked,
            candidates_tested: self.candidates,
            candidates_consistent: consistent,
        })
    }

    /// Attacks the **combined** observation of a coalition of devices —
    /// the cooperative-attack case the paper's conclusion leaves as future
    /// work. Each element pairs a member's coefficient block with its
    /// observed coded payload.
    ///
    /// The structured design of Eq. (8) resists only singleton coalitions;
    /// [`scec_coding::collusion::TPrivateCode`] resists up to its
    /// threshold `t`. This method measures either.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when any member's block and
    /// observation disagree, or when the coalition is empty.
    pub fn attack_coalition<F: Scalar, R: Rng + ?Sized>(
        &self,
        members: &[(usize, &Matrix<F>, &Matrix<F>)],
        rng: &mut R,
    ) -> Result<CoalitionVerdict> {
        let Some(((_, first_block, first_obs), rest)) = members.split_first() else {
            return Err(Error::ShapeMismatch {
                what: "coalition",
                lhs: (0, 0),
                rhs: (1, 1),
            });
        };
        let mut block = (*first_block).clone();
        let mut observed = (*first_obs).clone();
        for (_, b, o) in rest {
            block = block.vstack(b)?;
            observed = observed.vstack(o)?;
        }
        let verdict = self.attack_observation(0, &block, &observed, rng)?;
        Ok(CoalitionVerdict {
            members: members.iter().map(|(j, _, _)| *j).collect(),
            leaked_combinations: verdict.leaked_combinations,
            candidates_tested: verdict.candidates_tested,
            candidates_consistent: verdict.candidates_consistent,
        })
    }

    /// Whether the device could derive the specific pure-data combination
    /// `u · A` (given `u` of length `m`): true iff `[u | 0_r] ∈ L(B_j)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `device` is outside the design or `u` has
    /// the wrong length.
    pub fn can_derive<F: Scalar>(&self, device: usize, u: &[F]) -> Result<bool> {
        let design = self.design.as_ref().ok_or(Error::MissingDesign)?;
        let m = design.data_rows();
        if u.len() != m {
            return Err(Error::ShapeMismatch {
                what: "combination vector",
                lhs: (u.len(), 1),
                rhs: (m, 1),
            });
        }
        let block = design.device_block::<F>(device)?;
        let mut padded = u.to_vec();
        padded.extend(std::iter::repeat_n(F::zero(), design.random_rows()));
        Ok(span::contains(&block, &padded))
    }
}

/// One device's scripted misbehavior in a chaos scenario.
///
/// The simulation layer stays runtime-agnostic: these are *descriptions*
/// of faults. The one conversion layer onto concrete actor behaviors is
/// `scec_runtime::DeviceBehavior::from_fault` (also exposed as a `From`
/// impl), which every live-cluster driver — the CLI's `chaos`
/// subcommand included — goes through. Keeping the enum here lets
/// experiments and the DST generate, store, and compare scenarios
/// without pulling in the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The device behaves honestly.
    None,
    /// The device serves every query after a fixed delay (a straggler).
    Slow {
        /// Artificial service delay in milliseconds.
        millis: u64,
    },
    /// The device serves `after_queries` queries, then its process dies.
    Crash {
        /// Queries served before the crash.
        after_queries: u32,
    },
    /// The device silently drops each query independently at random.
    Flaky {
        /// Drop probability in thousandths (0..=1000).
        permille: u16,
    },
    /// The device receives queries but never responds.
    Omit,
    /// The device returns deliberately corrupted partials.
    Byzantine,
}

impl ChaosFault {
    /// Whether this fault leaves the device fully honest.
    pub fn is_benign(&self) -> bool {
        matches!(self, ChaosFault::None)
    }
}

/// A reproducible chaos scenario: one fault assignment per device.
///
/// Generated deterministically from a seed so that a failing chaos run
/// can be replayed exactly. The generator keeps a majority of devices
/// honest (and at least three of them) — enough that a supervised
/// cluster can plausibly re-allocate around the faulty ones — no matter
/// how high the requested intensity is.
///
/// # Example
///
/// ```
/// use scec_sim::adversary::ChaosPlan;
///
/// let plan = ChaosPlan::generate(6, 0.5, 42);
/// assert_eq!(plan, ChaosPlan::generate(6, 0.5, 42)); // same seed, same plan
/// assert!(plan.fault_count() <= 6 / 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// The intensity actually used, after clamping to `[0, 1]`.
    pub intensity: f64,
    /// Per-device faults, index `i` describing device `i + 1`.
    pub faults: Vec<ChaosFault>,
}

impl ChaosPlan {
    /// Generates a scenario for `devices` devices.
    ///
    /// `intensity` (clamped to `[0, 1]`) scales how many devices
    /// misbehave: `round(devices × intensity)`, capped so that a strict
    /// majority — and at least three devices — stay honest. Faulty
    /// devices and their fault kinds are drawn from
    /// `StdRng::seed_from_u64(seed)`, so equal arguments always produce
    /// equal plans.
    pub fn generate(devices: usize, intensity: f64, seed: u64) -> Self {
        let intensity = if intensity.is_finite() {
            intensity.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = vec![ChaosFault::None; devices];
        // A supervised repair needs >= 3 healthy devices, and quorum
        // arithmetic wants honest devices in the strict majority.
        let max_faulty = devices.saturating_sub(3).min(devices.saturating_sub(1) / 2);
        let wanted = (devices as f64 * intensity).round() as usize;
        let faulty = wanted.min(max_faulty);
        // Partial Fisher-Yates: pick `faulty` distinct victims.
        let mut order: Vec<usize> = (0..devices).collect();
        for k in 0..faulty {
            let pick = rng.gen_range(k..devices);
            order.swap(k, pick);
        }
        for &victim in order.iter().take(faulty) {
            faults[victim] = match rng.gen_range(0u32..5) {
                0 => ChaosFault::Slow {
                    millis: rng.gen_range(5u64..=50),
                },
                1 => ChaosFault::Crash {
                    after_queries: rng.gen_range(1u32..=4),
                },
                2 => ChaosFault::Flaky {
                    permille: rng.gen_range(100u16..=700),
                },
                3 => ChaosFault::Omit,
                _ => ChaosFault::Byzantine,
            };
        }
        ChaosPlan {
            seed,
            intensity,
            faults,
        }
    }

    /// Number of devices assigned a non-benign fault.
    pub fn fault_count(&self) -> usize {
        self.faults.iter().filter(|f| !f.is_benign()).count()
    }

    /// Devices (1-based) assigned a non-benign fault.
    pub fn faulty_devices(&self) -> Vec<usize> {
        self.faults
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_benign())
            .map(|(i, _)| i + 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scec_coding::{verify, Encoder};
    use scec_linalg::Fp61;

    fn encode_fp(
        m: usize,
        r: usize,
        l: usize,
        seed: u64,
    ) -> (CodeDesign, Matrix<Fp61>, Vec<DeviceShare<Fp61>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let design = CodeDesign::new(m, r).unwrap();
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let store = Encoder::new(design.clone()).encode(&a, &mut rng).unwrap();
        let shares = store.into_shares();
        (design, a, shares, rng)
    }

    #[test]
    fn structured_design_resists_every_device() {
        let (design, _a, shares, mut rng) = encode_fp(6, 3, 4, 1);
        let adversary = PassiveAdversary::new(design);
        for share in &shares {
            let verdict = adversary.attack(share, &mut rng).unwrap();
            assert!(
                verdict.is_information_theoretic_secure(),
                "device {}: {verdict:?}",
                share.device()
            );
            assert_eq!(verdict.leaked_combinations, 0);
            assert_eq!(verdict.candidates_consistent, verdict.candidates_tested);
        }
    }

    #[test]
    fn raw_data_rows_are_caught_by_both_attacks() {
        // An identity "code" stores raw data rows: the adversary must both
        // extract pure-data combinations AND distinguish candidates.
        let (design, a, _shares, mut rng) = encode_fp(4, 2, 3, 2);
        let raw_block = {
            let mut b = Matrix::<Fp61>::zeros(2, 6);
            b.set(0, 0, Fp61::new(1)).unwrap();
            b.set(1, 1, Fp61::new(1)).unwrap();
            b
        };
        let randomness = Matrix::<Fp61>::random(2, 3, &mut rng);
        let t = a.vstack(&randomness).unwrap();
        let observed = raw_block.matmul(&t).unwrap();
        let adversary = PassiveAdversary::new(design).with_candidates(6);
        let verdict = adversary
            .attack_observation(2, &raw_block, &observed, &mut rng)
            .unwrap();
        assert_eq!(verdict.leaked_combinations, 2);
        assert!(!verdict.is_information_theoretic_secure());
        // A random A' disagrees with the raw rows w.p. 1 − 2⁻⁶¹.
        assert_eq!(verdict.candidates_consistent, 0);
    }

    #[test]
    fn shared_randomness_leaks_a_difference() {
        // Device block [A_0 + R_0; A_1 + R_0]: the difference A_0 − A_1 is
        // derivable — exactly one leaked combination.
        let (design, a, _shares, mut rng) = encode_fp(4, 2, 3, 3);
        let mut block = Matrix::<Fp61>::zeros(2, 6);
        block.set(0, 0, Fp61::new(1)).unwrap(); // A_0
        block.set(0, 4, Fp61::new(1)).unwrap(); // + R_0
        block.set(1, 1, Fp61::new(1)).unwrap(); // A_1
        block.set(1, 4, Fp61::new(1)).unwrap(); // + R_0 again
        let randomness = Matrix::<Fp61>::random(2, 3, &mut rng);
        let t = a.vstack(&randomness).unwrap();
        let observed = block.matmul(&t).unwrap();
        let adversary = PassiveAdversary::new(design);
        let verdict = adversary
            .attack_observation(2, &block, &observed, &mut rng)
            .unwrap();
        assert_eq!(verdict.leaked_combinations, 1);
        assert!(!verdict.is_information_theoretic_secure());
    }

    #[test]
    fn dense_variant_resists_attack() {
        let (design, a, _shares, mut rng) = encode_fp(5, 2, 3, 4);
        let dense = verify::densify::<Fp61, _>(&design, &mut rng);
        let randomness = Matrix::<Fp61>::random(2, 3, &mut rng);
        let t = a.vstack(&randomness).unwrap();
        let adversary = PassiveAdversary::new(design.clone());
        for j in 1..=design.device_count() {
            let range = design.device_row_range(j).unwrap();
            let block = dense.row_block(range.start, range.end).unwrap();
            let observed = block.matmul(&t).unwrap();
            let verdict = adversary
                .attack_observation(j, &block, &observed, &mut rng)
                .unwrap();
            assert!(
                verdict.is_information_theoretic_secure(),
                "device {j}: {verdict:?}"
            );
        }
    }

    #[test]
    fn can_derive_matches_span_membership() {
        let (design, _a, _shares, _rng) = encode_fp(4, 2, 3, 5);
        let adversary = PassiveAdversary::new(design.clone());
        let mut e0 = vec![Fp61::new(0); 4];
        e0[0] = Fp61::new(1);
        for j in 1..=design.device_count() {
            assert!(!adversary.can_derive(j, &e0).unwrap(), "device {j}");
        }
        let zero = vec![Fp61::new(0); 4];
        assert!(adversary.can_derive(1, &zero).unwrap());
        assert!(adversary.can_derive(1, &[Fp61::new(1); 3]).is_err());
        assert!(adversary.can_derive(99, &e0).is_err());
    }

    #[test]
    fn f64_mode_also_passes() {
        let mut rng = StdRng::seed_from_u64(6);
        let design = CodeDesign::new(5, 2).unwrap();
        let a = Matrix::<f64>::random(5, 3, &mut rng);
        let store = Encoder::new(design.clone()).encode(&a, &mut rng).unwrap();
        let adversary = PassiveAdversary::new(design);
        for share in store.shares() {
            let verdict = adversary.attack(share, &mut rng).unwrap();
            assert!(verdict.is_information_theoretic_secure(), "{verdict:?}");
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let (design, _a, shares, mut rng) = encode_fp(4, 2, 3, 7);
        let adversary = PassiveAdversary::new(design);
        let wrong_rows = Matrix::<Fp61>::zeros(5, 6);
        assert!(matches!(
            adversary.attack_observation(1, &wrong_rows, shares[0].coded(), &mut rng),
            Err(Error::ShapeMismatch { .. })
        ));
        let wrong_width = Matrix::<Fp61>::zeros(2, 5);
        let obs = Matrix::<Fp61>::zeros(2, 3);
        assert!(matches!(
            adversary.attack_observation(1, &wrong_width, &obs, &mut rng),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn coalition_breaks_structured_design() {
        // Devices 1 (pure randomness) and 2 (data + randomness) together
        // cancel the blinding — the paper's non-collusion assumption is
        // load-bearing, and the coalition attack must demonstrate it.
        let (design, a, _shares, mut rng) = encode_fp(6, 2, 4, 8);
        let store = Encoder::new(design.clone()).encode(&a, &mut rng).unwrap();
        let b = design.encoding_matrix::<Fp61>();
        let adversary = PassiveAdversary::new(design.clone());
        let blocks: Vec<Matrix<Fp61>> = (1..=2)
            .map(|j| {
                let range = design.device_row_range(j).unwrap();
                b.row_block(range.start, range.end).unwrap()
            })
            .collect();
        let members: Vec<(usize, &Matrix<Fp61>, &Matrix<Fp61>)> = vec![
            (1, &blocks[0], store.share(1).unwrap().coded()),
            (2, &blocks[1], store.share(2).unwrap().coded()),
        ];
        let verdict = adversary.attack_coalition(&members, &mut rng).unwrap();
        assert!(verdict.leaked_combinations >= 1, "{verdict:?}");
        assert!(!verdict.is_information_theoretic_secure());
        assert_eq!(verdict.members, vec![1, 2]);
    }

    #[test]
    fn coalition_of_t_fails_against_t_private_code() {
        use scec_coding::collusion::TPrivateCode;
        let mut rng = StdRng::seed_from_u64(31);
        let (m, t, v, l) = (6usize, 2usize, 2usize, 3usize);
        let code = TPrivateCode::<Fp61>::new(m, t, v, &mut rng).unwrap();
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let store = code.encode(&a, &mut rng).unwrap();
        let adversary = PassiveAdversary::for_dimensions(m, code.random_rows());
        // Every pair of devices learns nothing.
        let blocks: Vec<Matrix<Fp61>> = (1..=code.device_count())
            .map(|j| code.device_block(j).unwrap())
            .collect();
        for j1 in 1..=code.device_count() {
            for j2 in (j1 + 1)..=code.device_count() {
                let members = vec![
                    (j1, &blocks[j1 - 1], store.shares()[j1 - 1].coded()),
                    (j2, &blocks[j2 - 1], store.shares()[j2 - 1].coded()),
                ];
                let verdict = adversary.attack_coalition(&members, &mut rng).unwrap();
                assert!(
                    verdict.is_information_theoretic_secure(),
                    "coalition ({j1}, {j2}): {verdict:?}"
                );
            }
        }
    }

    #[test]
    fn for_dimensions_adversary_rejects_design_methods() {
        let mut rng = StdRng::seed_from_u64(32);
        let adversary = PassiveAdversary::for_dimensions(4, 2);
        let (_design, _a, shares, _) = encode_fp(4, 2, 3, 33);
        assert!(matches!(
            adversary.attack(&shares[0], &mut rng),
            Err(Error::MissingDesign)
        ));
        assert!(matches!(
            adversary.can_derive(1, &[Fp61::new(0); 4]),
            Err(Error::MissingDesign)
        ));
    }

    #[test]
    fn empty_coalition_is_rejected() {
        let mut rng = StdRng::seed_from_u64(34);
        let adversary = PassiveAdversary::for_dimensions(4, 2);
        let members: Vec<(usize, &Matrix<Fp61>, &Matrix<Fp61>)> = vec![];
        assert!(adversary.attack_coalition(&members, &mut rng).is_err());
    }

    #[test]
    fn verdict_accessors() {
        let ok = AttackVerdict {
            device: 1,
            leaked_combinations: 0,
            candidates_tested: 4,
            candidates_consistent: 4,
        };
        assert!(ok.is_information_theoretic_secure());
        let leaky = AttackVerdict {
            leaked_combinations: 1,
            ..ok.clone()
        };
        assert!(!leaky.is_information_theoretic_secure());
        let distinguishable = AttackVerdict {
            candidates_consistent: 3,
            ..ok
        };
        assert!(!distinguishable.is_information_theoretic_secure());
    }

    #[test]
    fn chaos_plan_is_deterministic() {
        let a = ChaosPlan::generate(8, 0.5, 99);
        let b = ChaosPlan::generate(8, 0.5, 99);
        assert_eq!(a, b);
        assert_eq!(a.seed, 99);
        assert_eq!(a.faults.len(), 8);
    }

    #[test]
    fn chaos_seeds_produce_different_scenarios() {
        // Not guaranteed for every seed pair, but these must differ for
        // the generator to be useful; pinned seeds keep the test stable.
        let plans: Vec<_> = (0..8).map(|s| ChaosPlan::generate(9, 0.6, s)).collect();
        assert!(plans.windows(2).any(|w| w[0].faults != w[1].faults));
    }

    #[test]
    fn chaos_keeps_an_honest_majority() {
        for devices in 0..=12 {
            for seed in 0..20 {
                let plan = ChaosPlan::generate(devices, 1.0, seed);
                let faulty = plan.fault_count();
                let honest = devices - faulty;
                assert!(
                    faulty <= devices.saturating_sub(1) / 2,
                    "{faulty}/{devices} faulty at seed {seed}"
                );
                assert!(devices < 3 || honest >= 3);
                assert_eq!(plan.faulty_devices().len(), faulty);
            }
        }
    }

    #[test]
    fn chaos_intensity_is_clamped() {
        assert_eq!(ChaosPlan::generate(6, -2.0, 1).fault_count(), 0);
        assert_eq!(ChaosPlan::generate(6, f64::NAN, 1).fault_count(), 0);
        let max = ChaosPlan::generate(7, 9.0, 1);
        assert_eq!(max.intensity, 1.0);
        assert_eq!(max.fault_count(), 3);
    }

    #[test]
    fn chaos_zero_intensity_is_quiet() {
        let plan = ChaosPlan::generate(10, 0.0, 7);
        assert_eq!(plan.fault_count(), 0);
        assert!(plan.faults.iter().all(ChaosFault::is_benign));
    }
}
