//! Discrete-event simulation of the four-step SCEC protocol.
//!
//! The paper's cost model prices resources but abstracts time away;
//! Remark 1 notes that capping each device's load at `r` also bounds the
//! completion time. This module makes that claim measurable: it executes
//! the protocol — broadcast `x`, per-device compute, result upload, user
//! decode — over a network model with per-device link latency, per-value
//! transfer time, and per-operation compute time, using a proper
//! event-queue engine.
//!
//! # Example
//!
//! ```
//! use scec_coding::CodeDesign;
//! use scec_sim::event::{DeviceProfile, NetworkModel, ProtocolSimulator};
//!
//! let design = CodeDesign::new(8, 4)?; // 3 devices
//! let model = NetworkModel::homogeneous(3, DeviceProfile::default_edge(), 1e-9)?;
//! let report = ProtocolSimulator::new(model).simulate(&design, 128)?;
//! assert!(report.completion_time > 0.0);
//! assert_eq!(report.per_device.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use scec_coding::CodeDesign;

use crate::error::{Error, Result};

/// Timing characteristics of one edge device and its link to the user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// One-way link latency, seconds.
    pub latency: f64,
    /// Transfer time per field element, seconds (inverse bandwidth).
    pub per_value_time: f64,
    /// Time per scalar multiply-accumulate, seconds.
    pub per_op_time: f64,
}

impl DeviceProfile {
    /// A plausible edge device: 5 ms latency, ~10 M values/s link,
    /// ~1 GFLOP/s sustained.
    pub fn default_edge() -> Self {
        DeviceProfile {
            latency: 5e-3,
            per_value_time: 1e-7,
            per_op_time: 1e-9,
        }
    }

    /// Validates that all timings are finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTiming`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        for (what, value) in [
            ("latency", self.latency),
            ("per_value_time", self.per_value_time),
            ("per_op_time", self.per_op_time),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(Error::InvalidTiming { what, value });
            }
        }
        Ok(())
    }

    /// Draws a jittered variant: each timing scaled by a uniform factor in
    /// `[1 − jitter, 1 + jitter]`. Models fleet heterogeneity.
    ///
    /// # Panics
    ///
    /// Panics when `jitter` is not within `[0, 1)`.
    pub fn jittered<R: Rng + ?Sized>(&self, jitter: f64, rng: &mut R) -> DeviceProfile {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        let mut scale = |v: f64| v * rng.gen_range(1.0 - jitter..=1.0 + jitter);
        DeviceProfile {
            latency: scale(self.latency),
            per_value_time: scale(self.per_value_time),
            per_op_time: scale(self.per_op_time),
        }
    }
}

/// The network as the protocol sees it: one profile per participating
/// device plus the user's decode speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    devices: Vec<DeviceProfile>,
    user_per_op_time: f64,
}

impl NetworkModel {
    /// A fleet of `n` identical devices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTiming`] for invalid profiles or decode
    /// speed.
    pub fn homogeneous(n: usize, profile: DeviceProfile, user_per_op_time: f64) -> Result<Self> {
        NetworkModel::heterogeneous(vec![profile; n], user_per_op_time)
    }

    /// A fleet with explicit per-device profiles.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTiming`] for invalid profiles or decode
    /// speed.
    pub fn heterogeneous(devices: Vec<DeviceProfile>, user_per_op_time: f64) -> Result<Self> {
        for p in &devices {
            p.validate()?;
        }
        if !user_per_op_time.is_finite() || user_per_op_time < 0.0 {
            return Err(Error::InvalidTiming {
                what: "user_per_op_time",
                value: user_per_op_time,
            });
        }
        Ok(NetworkModel {
            devices,
            user_per_op_time,
        })
    }

    /// Number of devices in the model.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the model has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The profile of device `j` (1-based).
    ///
    /// # Panics
    ///
    /// Panics when `j` is outside `1..=len`.
    pub fn device(&self, j: usize) -> &DeviceProfile {
        &self.devices[j - 1]
    }
}

/// What happened on one device during a simulated query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceTimeline {
    /// Device index (1-based).
    pub device: usize,
    /// Coded rows processed (`V(B_j)`).
    pub load: usize,
    /// When the query vector finished arriving.
    pub input_arrived: f64,
    /// When the device finished computing its partial.
    pub compute_done: f64,
    /// When the partial finished arriving back at the user.
    pub result_arrived: f64,
}

/// One entry of the chronological event trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Simulation time, seconds.
    pub time: f64,
    /// The device concerned (1-based).
    pub device: usize,
    /// What happened.
    pub kind: LoggedEventKind,
}

/// Kinds of logged protocol events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoggedEventKind {
    /// The query vector finished arriving at the device.
    InputArrived,
    /// The device finished its matvec.
    ComputeDone,
    /// The device's partial finished arriving at the user.
    ResultArrived,
}

/// Full timing of one simulated query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionReport {
    /// Per-device timelines, device 1 first.
    pub per_device: Vec<DeviceTimeline>,
    /// When the last partial arrived.
    pub last_result: f64,
    /// When the user finished decoding (`last_result + m·t_sub`).
    pub completion_time: f64,
    /// The chronological event trace (ties broken by scheduling order).
    pub events: Vec<LoggedEvent>,
}

impl CompletionReport {
    /// The slowest device (the straggler), by result arrival.
    pub fn straggler(&self) -> Option<&DeviceTimeline> {
        self.per_device
            .iter()
            .max_by(|a, b| a.result_arrived.total_cmp(&b.result_arrived))
    }

    /// The earliest time at which the cumulative rows received from
    /// completed devices reach `needed` — i.e. when a quorum decoder
    /// ([`scec_coding::straggler`]) could start, ignoring stragglers.
    ///
    /// Returns `None` when even all devices together hold fewer than
    /// `needed` rows.
    pub fn time_to_rows(&self, needed: usize) -> Option<f64> {
        let mut arrivals: Vec<(f64, usize)> = self
            .per_device
            .iter()
            .map(|tl| (tl.result_arrived, tl.load))
            .collect();
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut have = 0;
        for (t, load) in arrivals {
            have += load;
            if have >= needed {
                return Some(t);
            }
        }
        None
    }
}

/// Event kinds of the protocol simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// The query vector has fully arrived at a device.
    InputArrived { device: usize },
    /// A device finished its matvec.
    ComputeDone { device: usize },
    /// A device's partial fully arrived back at the user.
    ResultArrived { device: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: usize,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Executes the protocol over a [`NetworkModel`] with an event queue.
#[derive(Debug, Clone)]
pub struct ProtocolSimulator {
    model: NetworkModel,
}

impl ProtocolSimulator {
    /// Creates a simulator over a network model.
    pub fn new(model: NetworkModel) -> Self {
        ProtocolSimulator { model }
    }

    /// The network model in force.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Simulates one query for `design` with data width `width` and
    /// returns the full timing report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DeviceCountMismatch`] when the model has fewer
    /// devices than the design requires.
    pub fn simulate(&self, design: &CodeDesign, width: usize) -> Result<CompletionReport> {
        let loads: Vec<usize> = (1..=design.device_count())
            .map(|j| design.device_load(j).expect("j in range"))
            .collect();
        self.simulate_loads(&loads, design.data_rows(), width)
    }

    /// Simulates one query over explicit per-device loads (coded rows per
    /// device) — used for straggler-extended deployments whose standby
    /// devices are not part of a plain [`CodeDesign`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DeviceCountMismatch`] when the model has fewer
    /// devices than loads given.
    pub fn simulate_loads(
        &self,
        loads: &[usize],
        data_rows: usize,
        width: usize,
    ) -> Result<CompletionReport> {
        let i = loads.len();
        if self.model.len() < i {
            return Err(Error::DeviceCountMismatch {
                model: self.model.len(),
                design: i,
            });
        }
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0;
        let mut push = |q: &mut BinaryHeap<Reverse<Event>>, time: f64, kind: EventKind| {
            q.push(Reverse(Event { time, seq, kind }));
            seq += 1;
        };

        // t = 0: the user starts broadcasting x (width values) to every
        // participating device in parallel.
        for j in 1..=i {
            let p = self.model.device(j);
            let arrive = p.latency + width as f64 * p.per_value_time;
            push(&mut queue, arrive, EventKind::InputArrived { device: j });
        }

        let mut events: Vec<LoggedEvent> = Vec::with_capacity(3 * i);
        let mut timelines: Vec<DeviceTimeline> = (1..=i)
            .map(|j| DeviceTimeline {
                device: j,
                load: loads[j - 1],
                input_arrived: 0.0,
                compute_done: 0.0,
                result_arrived: 0.0,
            })
            .collect();
        let mut last_result = 0.0f64;

        while let Some(Reverse(event)) = queue.pop() {
            match event.kind {
                EventKind::InputArrived { device } => {
                    events.push(LoggedEvent {
                        time: event.time,
                        device,
                        kind: LoggedEventKind::InputArrived,
                    });
                    let tl = &mut timelines[device - 1];
                    tl.input_arrived = event.time;
                    let p = self.model.device(device);
                    // V·l multiplies + V·(l−1) adds, one per_op each.
                    let ops = tl.load * width + tl.load * width.saturating_sub(1);
                    let done = event.time + ops as f64 * p.per_op_time;
                    push(&mut queue, done, EventKind::ComputeDone { device });
                }
                EventKind::ComputeDone { device } => {
                    events.push(LoggedEvent {
                        time: event.time,
                        device,
                        kind: LoggedEventKind::ComputeDone,
                    });
                    let tl = &mut timelines[device - 1];
                    tl.compute_done = event.time;
                    let p = self.model.device(device);
                    let arrive = event.time + p.latency + tl.load as f64 * p.per_value_time;
                    push(&mut queue, arrive, EventKind::ResultArrived { device });
                }
                EventKind::ResultArrived { device } => {
                    events.push(LoggedEvent {
                        time: event.time,
                        device,
                        kind: LoggedEventKind::ResultArrived,
                    });
                    let tl = &mut timelines[device - 1];
                    tl.result_arrived = event.time;
                    last_result = last_result.max(event.time);
                }
            }
        }

        // Step 4: m subtractions on the user device.
        let decode = data_rows as f64 * self.model.user_per_op_time;
        Ok(CompletionReport {
            per_device: timelines,
            last_result,
            completion_time: last_result + decode,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn flat_profile() -> DeviceProfile {
        DeviceProfile {
            latency: 1.0,
            per_value_time: 0.1,
            per_op_time: 0.01,
        }
    }

    #[test]
    fn homogeneous_completion_matches_closed_form() {
        // m=4, r=2 → i=3 devices, loads [2,2,2]; width 5.
        let design = CodeDesign::new(4, 2).unwrap();
        let model = NetworkModel::homogeneous(3, flat_profile(), 0.001).unwrap();
        let report = ProtocolSimulator::new(model).simulate(&design, 5).unwrap();
        let input = 1.0 + 5.0 * 0.1; // latency + l values
        let ops = 2 * 5 + 2 * 4; // V·l + V·(l−1)
        let compute = input + ops as f64 * 0.01;
        let back = compute + 1.0 + 2.0 * 0.1;
        for tl in &report.per_device {
            assert!((tl.input_arrived - input).abs() < 1e-12);
            assert!((tl.compute_done - compute).abs() < 1e-12);
            assert!((tl.result_arrived - back).abs() < 1e-12);
        }
        assert!((report.last_result - back).abs() < 1e-12);
        assert!((report.completion_time - (back + 4.0 * 0.001)).abs() < 1e-12);
    }

    #[test]
    fn straggler_is_the_slowest_device() {
        let mut profiles = vec![flat_profile(); 3];
        profiles[1].per_op_time = 1.0; // device 2 is very slow
        let model = NetworkModel::heterogeneous(profiles, 0.0).unwrap();
        let design = CodeDesign::new(4, 2).unwrap();
        let report = ProtocolSimulator::new(model).simulate(&design, 3).unwrap();
        assert_eq!(report.straggler().unwrap().device, 2);
        assert!((report.completion_time - report.last_result).abs() < 1e-12);
    }

    #[test]
    fn unequal_last_device_load_shows_up() {
        // m=5, r=2 → i=4, loads [2,2,2,1]: device 4 computes less.
        let design = CodeDesign::new(5, 2).unwrap();
        let model = NetworkModel::homogeneous(4, flat_profile(), 0.0).unwrap();
        let report = ProtocolSimulator::new(model).simulate(&design, 4).unwrap();
        assert!(report.per_device[3].compute_done < report.per_device[0].compute_done);
        assert_eq!(report.per_device[3].load, 1);
    }

    #[test]
    fn device_count_mismatch_is_rejected() {
        let design = CodeDesign::new(4, 2).unwrap(); // needs 3 devices
        let model = NetworkModel::homogeneous(2, flat_profile(), 0.0).unwrap();
        assert!(matches!(
            ProtocolSimulator::new(model).simulate(&design, 3),
            Err(Error::DeviceCountMismatch {
                model: 2,
                design: 3
            })
        ));
    }

    #[test]
    fn invalid_timings_are_rejected() {
        let mut p = flat_profile();
        p.latency = -1.0;
        assert!(matches!(
            NetworkModel::homogeneous(2, p, 0.0),
            Err(Error::InvalidTiming {
                what: "latency",
                ..
            })
        ));
        assert!(matches!(
            NetworkModel::homogeneous(2, flat_profile(), f64::NAN),
            Err(Error::InvalidTiming {
                what: "user_per_op_time",
                ..
            })
        ));
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = flat_profile();
        for _ in 0..100 {
            let j = base.jittered(0.2, &mut rng);
            assert!(j.latency >= 0.8 && j.latency <= 1.2);
            assert!(j.per_value_time >= 0.08 && j.per_value_time <= 0.12);
            j.validate().unwrap();
        }
    }

    #[test]
    fn larger_r_fewer_devices_longer_compute() {
        // With homogeneous devices, concentrating load (larger r) cannot
        // finish faster: per-device work grows.
        let model = NetworkModel::homogeneous(10, flat_profile(), 0.0).unwrap();
        let sim = ProtocolSimulator::new(model);
        let m = 12;
        let mut last = 0.0;
        for r in [2usize, 3, 4, 6, 12] {
            let design = CodeDesign::new(m, r).unwrap();
            let report = sim.simulate(&design, 8).unwrap();
            assert!(
                report.completion_time >= last - 1e-12,
                "r={r}: {} < {last}",
                report.completion_time
            );
            last = report.completion_time;
        }
    }

    #[test]
    fn event_trace_is_chronological_and_complete() {
        let design = CodeDesign::new(5, 2).unwrap(); // 4 devices
        let model = NetworkModel::homogeneous(4, flat_profile(), 0.0).unwrap();
        let report = ProtocolSimulator::new(model).simulate(&design, 3).unwrap();
        // 3 events per device.
        assert_eq!(report.events.len(), 12);
        // Non-decreasing timestamps.
        for w in report.events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Per device: InputArrived < ComputeDone < ResultArrived.
        for j in 1..=4 {
            let times: Vec<(LoggedEventKind, f64)> = report
                .events
                .iter()
                .filter(|e| e.device == j)
                .map(|e| (e.kind, e.time))
                .collect();
            assert_eq!(times.len(), 3);
            assert_eq!(times[0].0, LoggedEventKind::InputArrived);
            assert_eq!(times[1].0, LoggedEventKind::ComputeDone);
            assert_eq!(times[2].0, LoggedEventKind::ResultArrived);
            assert!(times[0].1 <= times[1].1 && times[1].1 < times[2].1);
        }
    }

    #[test]
    fn model_accessors() {
        let model = NetworkModel::homogeneous(3, flat_profile(), 0.5).unwrap();
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        assert_eq!(model.device(1), &flat_profile());
        let sim = ProtocolSimulator::new(model.clone());
        assert_eq!(sim.model(), &model);
    }

    #[test]
    fn default_edge_profile_is_valid() {
        DeviceProfile::default_edge().validate().unwrap();
    }
}
