//! Reproducible generation of experiment instances.
//!
//! Each Monte-Carlo point in the paper's Fig. 2 averages 1000 instances:
//! a fleet of `k` devices with unit costs drawn from a
//! [`CostDistribution`]. [`InstanceGenerator`] produces those fleets (and,
//! for the end-to-end experiments, full data/query payloads) from a seeded
//! RNG so every figure is exactly reproducible.

use rand::{rngs::StdRng, Rng, SeedableRng};

use scec_allocation::EdgeFleet;
use scec_linalg::{Matrix, Scalar, Vector};

use crate::dist::CostDistribution;

/// Generates random experiment instances.
///
/// # Example
///
/// ```
/// use scec_sim::{CostDistribution, InstanceGenerator};
///
/// let mut gen = InstanceGenerator::from_seed(42);
/// let fleet = gen.fleet(25, CostDistribution::uniform(5.0));
/// assert_eq!(fleet.len(), 25);
/// // Costs are sorted ascending and strictly positive.
/// assert!(fleet.sorted_costs().windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug)]
pub struct InstanceGenerator {
    rng: StdRng,
}

impl InstanceGenerator {
    /// Creates a generator from a seed (deterministic across runs).
    pub fn from_seed(seed: u64) -> Self {
        InstanceGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a fleet of `k` devices with unit costs from `dist`.
    ///
    /// # Panics
    ///
    /// Panics when `k < 2` (the system model requires at least two edge
    /// devices) or when `dist` has degenerate parameters.
    pub fn fleet(&mut self, k: usize, dist: CostDistribution) -> EdgeFleet {
        assert!(k >= 2, "need at least two devices, got {k}");
        let costs = dist.sample_many(k, &mut self.rng);
        EdgeFleet::from_unit_costs(costs).expect("positive sampled costs form a valid fleet")
    }

    /// Draws a random data matrix.
    pub fn data_matrix<F: Scalar>(&mut self, m: usize, l: usize) -> Matrix<F> {
        Matrix::random(m, l, &mut self.rng)
    }

    /// Draws a random query vector.
    pub fn query<F: Scalar>(&mut self, l: usize) -> Vector<F> {
        Vector::random(l, &mut self.rng)
    }

    /// Access the underlying RNG (for passing into APIs that sample).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Forks an independent generator (seeded from this one) so parallel
    /// workers get decorrelated streams.
    pub fn fork(&mut self) -> InstanceGenerator {
        InstanceGenerator::from_seed(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scec_linalg::Fp61;

    #[test]
    fn deterministic_given_seed() {
        let mut a = InstanceGenerator::from_seed(7);
        let mut b = InstanceGenerator::from_seed(7);
        let fa = a.fleet(10, CostDistribution::uniform(5.0));
        let fb = b.fleet(10, CostDistribution::uniform(5.0));
        assert_eq!(fa.sorted_costs(), fb.sorted_costs());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = InstanceGenerator::from_seed(1);
        let mut b = InstanceGenerator::from_seed(2);
        let fa = a.fleet(10, CostDistribution::uniform(5.0));
        let fb = b.fleet(10, CostDistribution::uniform(5.0));
        assert_ne!(fa.sorted_costs(), fb.sorted_costs());
    }

    #[test]
    fn payload_generation() {
        let mut g = InstanceGenerator::from_seed(3);
        let m = g.data_matrix::<Fp61>(4, 6);
        assert_eq!(m.shape(), (4, 6));
        let q = g.query::<f64>(6);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn fork_is_decorrelated() {
        let mut g = InstanceGenerator::from_seed(5);
        let mut f1 = g.fork();
        let mut f2 = g.fork();
        let a = f1.fleet(5, CostDistribution::uniform(5.0));
        let b = f2.fleet(5, CostDistribution::uniform(5.0));
        assert_ne!(a.sorted_costs(), b.sorted_costs());
    }

    #[test]
    #[should_panic(expected = "at least two devices")]
    fn tiny_fleet_panics() {
        let mut g = InstanceGenerator::from_seed(1);
        let _ = g.fleet(1, CostDistribution::uniform(5.0));
    }

    #[test]
    fn normal_fleets_are_valid() {
        let mut g = InstanceGenerator::from_seed(11);
        for sigma in [0.01, 1.25, 2.5] {
            let f = g.fleet(25, CostDistribution::normal(5.0, sigma));
            assert!(f.sorted_costs().iter().all(|&c| c > 0.0));
        }
    }
}
