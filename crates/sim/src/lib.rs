//! Edge-network simulation substrate for the MCSCEC evaluation.
//!
//! The paper's entire evaluation (Sec. V) is Monte-Carlo simulation over
//! synthetic edge fleets — there is no hardware testbed to reproduce.
//! This crate supplies everything those experiments need, plus the pieces
//! the paper's math abstracts away:
//!
//! * [`dist`] — the two unit-cost distributions of Sec. V, `U(1, c_max)`
//!   and `N(µ, σ²)` (Box–Muller, truncated positive; `rand_distr` is not
//!   in the allowed offline dependency set, so Normal sampling is
//!   implemented here).
//! * [`instance`] — reproducible generation of edge fleets and whole
//!   experiment instances.
//! * [`adversary`] — a **passive single-device attacker** (the paper's
//!   attack model): it sees one device's coefficient block and coded
//!   payload, and tries to (a) extract a pure-data linear combination via
//!   span arithmetic and (b) distinguish candidate data matrices. For a
//!   secure LCEC, (a) finds nothing and (b) is impossible — every
//!   alternative data matrix is *simulatable* with consistent randomness,
//!   which is exactly the meaning of `H(A | B_j T) = H(A)`. The module
//!   also hosts [`ChaosPlan`]: reproducible seeded fault-injection
//!   scenarios (crashes, drops, omission, Byzantine corruption) for
//!   exercising the runtime's supervised cluster.
//! * [`event`] — a discrete-event simulator of the full four-step protocol
//!   over a latency/bandwidth/compute-speed network model, used for the
//!   completion-time ablation (Remark 1: the per-device cap `V(B_j) ≤ r`
//!   bounds the end-to-end completion time).
//!
//! # Example: auditing a deployment against a passive attacker
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use scec_core::{AllocationStrategy, ScecSystem};
//! use scec_allocation::EdgeFleet;
//! use scec_linalg::{Fp61, Matrix};
//! use scec_sim::adversary::PassiveAdversary;
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let a = Matrix::<Fp61>::random(6, 4, &mut rng);
//! let fleet = EdgeFleet::from_unit_costs(vec![1.0, 2.0, 3.0])?;
//! let system = ScecSystem::build(a, fleet, AllocationStrategy::Mcscec, &mut rng)?;
//! let deployment = system.distribute(&mut rng)?;
//!
//! for device in deployment.devices() {
//!     let verdict = PassiveAdversary::new(system.design().clone())
//!         .attack(device.share(), &mut rng)?;
//!     assert!(verdict.is_information_theoretic_secure());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod dist;
pub mod error;
pub mod event;
pub mod instance;
pub mod planner;

pub use adversary::{ChaosFault, ChaosPlan};
pub use dist::CostDistribution;
pub use error::{Error, Result};
pub use instance::InstanceGenerator;
