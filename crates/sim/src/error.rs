//! Error type for the simulation layer.

use std::fmt;

/// A specialized result type for simulation operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the adversary and the event simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Two simulation inputs disagreed on shape.
    ShapeMismatch {
        /// What was being matched.
        what: &'static str,
        /// Left shape.
        lhs: (usize, usize),
        /// Right shape.
        rhs: (usize, usize),
    },
    /// A network model was built for a different device count than the
    /// design it is asked to simulate.
    DeviceCountMismatch {
        /// Devices in the network model.
        model: usize,
        /// Devices in the code design.
        design: usize,
    },
    /// A timing parameter was negative or non-finite.
    InvalidTiming {
        /// Name of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// No feasible allocation meets the requested completion-time
    /// deadline.
    DeadlineUnreachable {
        /// The requested deadline, seconds.
        deadline: f64,
        /// The fastest achievable completion time, seconds.
        fastest: f64,
    },
    /// The adversary was built with [`for_dimensions`] and asked for an
    /// operation that needs the structured design (e.g. `attack`,
    /// `can_derive`).
    ///
    /// [`for_dimensions`]: crate::adversary::PassiveAdversary::for_dimensions
    MissingDesign,
    /// An underlying coding-layer failure.
    Coding(scec_coding::Error),
    /// An underlying linear-algebra failure.
    Linalg(scec_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { what, lhs, rhs } => write!(
                f,
                "{what}: {}x{} does not match {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::DeviceCountMismatch { model, design } => write!(
                f,
                "network model has {model} devices but the design needs {design}"
            ),
            Error::InvalidTiming { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            Error::DeadlineUnreachable { deadline, fastest } => write!(
                f,
                "no allocation meets the {deadline}s deadline (fastest achievable: {fastest}s)"
            ),
            Error::MissingDesign => f.write_str("adversary was built without a structured design"),
            Error::Coding(e) => write!(f, "coding failure: {e}"),
            Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Coding(e) => Some(e),
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scec_coding::Error> for Error {
    fn from(e: scec_coding::Error) -> Self {
        Error::Coding(e)
    }
}

impl From<scec_linalg::Error> for Error {
    fn from(e: scec_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::ShapeMismatch {
            what: "blocks",
            lhs: (1, 2),
            rhs: (3, 4),
        };
        assert_eq!(e.to_string(), "blocks: 1x2 does not match 3x4");
        assert_eq!(
            Error::DeviceCountMismatch {
                model: 2,
                design: 3
            }
            .to_string(),
            "network model has 2 devices but the design needs 3"
        );
        assert_eq!(
            Error::InvalidTiming {
                what: "latency",
                value: -1.0
            }
            .to_string(),
            "latency must be finite and non-negative, got -1"
        );
        assert!(Error::from(scec_coding::Error::UnknownDevice {
            device: 1,
            devices: 0
        })
        .to_string()
        .starts_with("coding failure"));
        assert!(Error::from(scec_linalg::Error::Singular)
            .to_string()
            .starts_with("linear algebra failure"));
    }

    #[test]
    fn sources() {
        use std::error::Error as _;
        assert!(Error::from(scec_linalg::Error::Singular).source().is_some());
        assert!(Error::InvalidTiming {
            what: "x",
            value: 0.0
        }
        .source()
        .is_none());
    }
}
