//! Property-based tests for the simulation layer.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use scec_coding::{CodeDesign, Encoder};
use scec_linalg::{Fp61, Matrix};
use scec_sim::adversary::PassiveAdversary;
use scec_sim::event::{DeviceProfile, NetworkModel, ProtocolSimulator};
use scec_sim::{CostDistribution, InstanceGenerator};

fn design_params() -> impl Strategy<Value = (usize, usize)> {
    (1usize..12).prop_flat_map(|m| (Just(m), 1usize..=m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_device_of_every_design_is_its(
        (m, r) in design_params(),
        l in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let design = CodeDesign::new(m, r).unwrap();
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let store = Encoder::new(design.clone()).encode(&a, &mut rng).unwrap();
        let adversary = PassiveAdversary::new(design).with_candidates(2);
        for share in store.shares() {
            let verdict = adversary.attack(share, &mut rng).unwrap();
            prop_assert!(
                verdict.is_information_theoretic_secure(),
                "m={m} r={r} device={} verdict={:?}",
                share.device(), verdict
            );
        }
    }

    #[test]
    fn sampled_costs_are_always_positive(
        seed in any::<u64>(),
        c_max in 1.1f64..30.0,
        sigma in 0.0f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(CostDistribution::uniform(c_max).sample(&mut rng) > 0.0);
            prop_assert!(CostDistribution::normal(5.0, sigma).sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn generated_fleets_are_sorted_and_valid(
        seed in any::<u64>(),
        k in 2usize..40,
    ) {
        let mut gen = InstanceGenerator::from_seed(seed);
        let fleet = gen.fleet(k, CostDistribution::uniform(5.0));
        prop_assert_eq!(fleet.len(), k);
        let costs = fleet.sorted_costs();
        prop_assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(costs.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn completion_time_ordering_is_sane(
        (m, r) in design_params(),
        width in 1usize..50,
    ) {
        let design = CodeDesign::new(m, r).unwrap();
        let model = NetworkModel::homogeneous(
            design.device_count(),
            DeviceProfile::default_edge(),
            1e-9,
        ).unwrap();
        let report = ProtocolSimulator::new(model).simulate(&design, width).unwrap();
        for tl in &report.per_device {
            prop_assert!(tl.input_arrived > 0.0);
            prop_assert!(tl.compute_done >= tl.input_arrived);
            prop_assert!(tl.result_arrived > tl.compute_done);
            prop_assert!(tl.result_arrived <= report.last_result + 1e-15);
        }
        prop_assert!(report.completion_time >= report.last_result);
        prop_assert_eq!(report.per_device.len(), design.device_count());
    }

    #[test]
    fn deadline_planner_is_consistent(
        seed in any::<u64>(),
        m in 4usize..40,
        k in 3usize..8,
    ) {
        use scec_sim::planner::DeadlinePlanner;
        use scec_sim::event::DeviceProfile;
        use scec_allocation::{ta, EdgeFleet};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let costs: Vec<f64> = (0..k).map(|_| rng.gen_range(1.0..5.0)).collect();
        let fleet = EdgeFleet::from_unit_costs(costs).unwrap();
        let profiles = vec![DeviceProfile::default_edge(); k];
        let planner = DeadlinePlanner::new(&fleet, &profiles, 1e-9).unwrap();
        // A generous deadline must reproduce the unconstrained optimum…
        let plan = planner.plan(m, 8, 1e6).unwrap();
        let opt = ta::ta1(m, &fleet).unwrap();
        prop_assert!((plan.total_cost - opt.total_cost()).abs() < 1e-9);
        // …and any feasible plan can never beat it.
        prop_assert!(plan.total_cost >= opt.total_cost() - 1e-9);
        prop_assert!(plan.completion_time > 0.0);
        // An impossible deadline errors with the fastest time.
        match planner.plan(m, 8, 0.0) {
            Err(scec_sim::Error::DeadlineUnreachable { fastest, .. }) => {
                prop_assert!(fastest > 0.0);
            }
            other => prop_assert!(false, "expected DeadlineUnreachable, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn leak_detector_counts_shared_randomness(
        m in 2usize..8,
        seed in any::<u64>(),
    ) {
        // Construct a block where TWO coded rows share one random row: the
        // adversary must report exactly one leaked combination.
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 2;
        if m < r { return Ok(()); }
        let design = CodeDesign::new(m, r).unwrap();
        let n = m + r;
        let mut block = Matrix::<Fp61>::zeros(2, n);
        block.set(0, 0, Fp61::new(1)).unwrap();
        block.set(0, m, Fp61::new(1)).unwrap();
        block.set(1, 1, Fp61::new(1)).unwrap();
        block.set(1, m, Fp61::new(1)).unwrap();
        let a = Matrix::<Fp61>::random(m, 3, &mut rng);
        let randomness = Matrix::<Fp61>::random(r, 3, &mut rng);
        let t = a.vstack(&randomness).unwrap();
        let observed = block.matmul(&t).unwrap();
        let verdict = PassiveAdversary::new(design)
            .attack_observation(1, &block, &observed, &mut rng)
            .unwrap();
        prop_assert_eq!(verdict.leaked_combinations, 1);
        prop_assert!(!verdict.is_information_theoretic_secure());
    }
}
