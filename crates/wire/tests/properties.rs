//! Property-based tests for the wire format: roundtrips for arbitrary
//! values and — the important one — *no panic and no huge allocation on
//! arbitrary hostile bytes*.

use std::io::Cursor;

use proptest::prelude::*;
use scec_linalg::{Fp61, FpGeneric, Matrix, Vector};
use scec_telemetry::context::{TraceContext, TRACE_CONTEXT_WIRE_BYTES};
use scec_wire::stream::{read_frame, write_frame, StreamError, DEFAULT_MAX_FRAME};
use scec_wire::{
    decode_framed, decode_framed_ctx, encode_framed, encode_framed_ctx_into, encode_framed_into,
    parse_header, peek_tag, tag, WireDecode, WireEncode, TRACED_VERSION, VERSION,
};

proptest! {
    #[test]
    fn u64_f64_roundtrip(v in any::<u64>(), f in any::<f64>()) {
        prop_assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
        let back = f64::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), f.to_bits());
    }

    #[test]
    fn fp61_roundtrip(v in 0u64..scec_linalg::fp::MODULUS) {
        let x = Fp61::new(v);
        prop_assert_eq!(Fp61::from_bytes(&x.to_bytes()).unwrap(), x);
    }

    #[test]
    fn fp257_roundtrip(v in 0u64..257) {
        type F = FpGeneric<257>;
        let x = F::new(v);
        prop_assert_eq!(F::from_bytes(&x.to_bytes()).unwrap(), x);
    }

    #[test]
    fn matrix_roundtrip(
        rows in 0usize..6,
        cols in 0usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Fp61>::random(rows, cols, &mut rng);
        prop_assert_eq!(Matrix::<Fp61>::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn vector_roundtrip(data in proptest::collection::vec(any::<f64>(), 0..20)) {
        let v = Vector::from_vec(data);
        let back = Vector::<f64>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.as_slice().iter().zip(v.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Whatever the bytes, decoding returns Ok or a typed error — no
        // panic, no unbounded allocation (length prefixes are validated
        // against the remaining buffer before reserving).
        let _ = Matrix::<Fp61>::from_bytes(&bytes);
        let _ = Vector::<Fp61>::from_bytes(&bytes);
        let _ = Vec::<u64>::from_bytes(&bytes);
        let _ = decode_framed::<Matrix<Fp61>>(&bytes, tag::MATRIX);
    }

    #[test]
    fn bit_flips_are_rejected_or_yield_valid_values(
        seed in any::<u64>(),
        flip_byte in 0usize..64,
        flip_bit in 0usize..8,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Fp61>::random(2, 3, &mut rng);
        let mut frame = encode_framed(&m, tag::MATRIX);
        let idx = flip_byte % frame.len();
        frame[idx] ^= 1 << flip_bit;
        // Either the corruption is caught (typed error) or it decoded to
        // SOME valid matrix (e.g. a flipped low bit of a residue) — both
        // are acceptable; what is not acceptable is a panic.
        if let Ok(decoded) = decode_framed::<Matrix<Fp61>>(&frame, tag::MATRIX) {
            prop_assert_eq!(decoded.ncols(), 3);
        }
    }

    #[test]
    fn stream_frames_roundtrip_back_to_back(
        seed in any::<u64>(),
        frames in 1usize..5,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads: Vec<Vec<u8>> = (0..frames)
            .map(|i| encode_framed(&Matrix::<Fp61>::random(i + 1, 2, &mut rng), tag::MATRIX))
            .collect();
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        let mut buf = Vec::new();
        for p in &payloads {
            read_frame(&mut cursor, &mut buf, DEFAULT_MAX_FRAME).unwrap();
            prop_assert_eq!(&buf, p);
        }
        // The stream is drained exactly: the next read sees a clean close.
        prop_assert!(matches!(
            read_frame(&mut cursor, &mut buf, DEFAULT_MAX_FRAME),
            Err(StreamError::Closed)
        ));
    }

    #[test]
    fn truncated_stream_frames_yield_typed_errors(
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = encode_framed(&Matrix::<Fp61>::random(3, 2, &mut rng), tag::MATRIX);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        let mut cursor = Cursor::new(&wire[..cut]);
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf, DEFAULT_MAX_FRAME) {
            // Clean close only when not a single header byte arrived.
            Err(StreamError::Closed) => prop_assert_eq!(cut, 0),
            // Otherwise the truncation is reported as a typed wire error.
            Err(StreamError::Wire(e)) => prop_assert!(matches!(
                e,
                scec_wire::Error::UnexpectedEof { .. }
            )),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }

    #[test]
    fn oversized_stream_frames_are_rejected_before_allocation(
        claimed in (DEFAULT_MAX_FRAME as u32 + 1)..=u32::MAX,
    ) {
        // A header claiming more than the cap is rejected after exactly
        // the 4 header bytes — the payload is never read or allocated.
        let mut wire = claimed.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0xAB; 32]);
        let mut cursor = Cursor::new(wire);
        let mut buf = Vec::new();
        prop_assert!(matches!(
            read_frame(&mut cursor, &mut buf, DEFAULT_MAX_FRAME),
            Err(StreamError::Wire(scec_wire::Error::FrameTooLarge { .. }))
        ));
        prop_assert_eq!(cursor.position(), 4);
        prop_assert!(buf.capacity() <= DEFAULT_MAX_FRAME);
    }

    #[test]
    fn garbage_stream_bytes_never_panic_or_over_read(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let len = bytes.len();
        let mut cursor = Cursor::new(bytes);
        let mut buf = Vec::new();
        // Drain the garbage as frames until it errors or closes; every
        // outcome must be a typed error, and the reader must never
        // consume past the end of the input.
        for _ in 0..len + 1 {
            match read_frame(&mut cursor, &mut buf, 1 << 16) {
                Ok(()) => {
                    // A structurally valid frame of garbage payload must
                    // still fail *decoding* with a typed error, not panic.
                    let _ = decode_framed::<Matrix<Fp61>>(&buf, tag::MATRIX);
                }
                Err(_) => break,
            }
        }
        prop_assert!(cursor.position() as usize <= len);
    }

    #[test]
    fn frame_versions_round_trip_old_and_new(
        seed in any::<u64>(),
        rows in 1usize..5,
        trace_id in any::<u64>(),
        parent in any::<u64>(),
        sampled in any::<bool>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Fp61>::random(rows, 3, &mut rng);
        let ctx = TraceContext { trace_id, parent_span_id: parent, sampled };

        // Old codec, new decoder: a v1 frame parses with no context.
        let v1 = encode_framed(&m, tag::MATRIX);
        prop_assert_eq!(parse_header(&v1).unwrap().version, VERSION);
        let (back, got) = decode_framed_ctx::<Matrix<Fp61>>(&v1, tag::MATRIX).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(got, None);

        // New codec, old-style (ctx-oblivious) decoder: the payload
        // decodes identically and the context survives the ctx path.
        let mut v2 = Vec::new();
        encode_framed_ctx_into(&m, tag::MATRIX, Some(&ctx), &mut v2);
        prop_assert_eq!(peek_tag(&v2).unwrap(), tag::MATRIX);
        let header = parse_header(&v2).unwrap();
        prop_assert_eq!(header.version, TRACED_VERSION);
        prop_assert_eq!(header.trace, Some(ctx));
        prop_assert_eq!(decode_framed::<Matrix<Fp61>>(&v2, tag::MATRIX).unwrap(), m.clone());
        let (back, got) = decode_framed_ctx::<Matrix<Fp61>>(&v2, tag::MATRIX).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(got, Some(ctx));

        // The two framings differ by exactly the trace block: strip it
        // and patch the version and the bytes are the v1 frame.
        prop_assert_eq!(v2.len(), v1.len() + TRACE_CONTEXT_WIRE_BYTES as usize);
        let mut stripped = v2.clone();
        stripped.drain(8..8 + TRACE_CONTEXT_WIRE_BYTES as usize);
        stripped[4..6].copy_from_slice(&VERSION.to_le_bytes());
        prop_assert_eq!(stripped, v1);
    }

    #[test]
    fn encode_framed_into_matches_fresh_encoding(
        seed in any::<u64>(),
        rows in 1usize..5,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pooled = Vec::with_capacity(4096);
        let cap = pooled.capacity();
        for _ in 0..3 {
            let m = Matrix::<Fp61>::random(rows, 3, &mut rng);
            encode_framed_into(&m, tag::MATRIX, &mut pooled);
            prop_assert_eq!(&pooled, &encode_framed(&m, tag::MATRIX));
        }
        // Small messages never outgrow the pooled buffer: no reallocation.
        prop_assert_eq!(pooled.capacity(), cap);
    }
}
