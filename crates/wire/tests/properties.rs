//! Property-based tests for the wire format: roundtrips for arbitrary
//! values and — the important one — *no panic and no huge allocation on
//! arbitrary hostile bytes*.

use proptest::prelude::*;
use scec_linalg::{Fp61, FpGeneric, Matrix, Vector};
use scec_wire::{decode_framed, encode_framed, tag, WireDecode, WireEncode};

proptest! {
    #[test]
    fn u64_f64_roundtrip(v in any::<u64>(), f in any::<f64>()) {
        prop_assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
        let back = f64::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), f.to_bits());
    }

    #[test]
    fn fp61_roundtrip(v in 0u64..scec_linalg::fp::MODULUS) {
        let x = Fp61::new(v);
        prop_assert_eq!(Fp61::from_bytes(&x.to_bytes()).unwrap(), x);
    }

    #[test]
    fn fp257_roundtrip(v in 0u64..257) {
        type F = FpGeneric<257>;
        let x = F::new(v);
        prop_assert_eq!(F::from_bytes(&x.to_bytes()).unwrap(), x);
    }

    #[test]
    fn matrix_roundtrip(
        rows in 0usize..6,
        cols in 0usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Fp61>::random(rows, cols, &mut rng);
        prop_assert_eq!(Matrix::<Fp61>::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn vector_roundtrip(data in proptest::collection::vec(any::<f64>(), 0..20)) {
        let v = Vector::from_vec(data);
        let back = Vector::<f64>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.as_slice().iter().zip(v.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Whatever the bytes, decoding returns Ok or a typed error — no
        // panic, no unbounded allocation (length prefixes are validated
        // against the remaining buffer before reserving).
        let _ = Matrix::<Fp61>::from_bytes(&bytes);
        let _ = Vector::<Fp61>::from_bytes(&bytes);
        let _ = Vec::<u64>::from_bytes(&bytes);
        let _ = decode_framed::<Matrix<Fp61>>(&bytes, tag::MATRIX);
    }

    #[test]
    fn bit_flips_are_rejected_or_yield_valid_values(
        seed in any::<u64>(),
        flip_byte in 0usize..64,
        flip_bit in 0usize..8,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Fp61>::random(2, 3, &mut rng);
        let mut frame = encode_framed(&m, tag::MATRIX);
        let idx = flip_byte % frame.len();
        frame[idx] ^= 1 << flip_bit;
        // Either the corruption is caught (typed error) or it decoded to
        // SOME valid matrix (e.g. a flipped low bit of a residue) — both
        // are acceptable; what is not acceptable is a panic.
        if let Ok(decoded) = decode_framed::<Matrix<Fp61>>(&frame, tag::MATRIX) {
            prop_assert_eq!(decoded.ncols(), 3);
        }
    }
}
