//! Versioned binary wire format for the SCEC protocol.
//!
//! The paper's cloud "computes and then distributes `B_j T`" to each edge
//! device — which, in a real deployment, means bytes on a wire. The
//! allowed offline dependency set contains no serde *format* crate, so
//! this crate provides a small, explicit binary codec:
//!
//! * little-endian fixed-width integers, IEEE-754 bit patterns for `f64`,
//!   canonical residues for the finite fields;
//! * every collection is length-prefixed and bounds-checked on decode —
//!   truncated or corrupt input yields a typed [`Error`], never a panic
//!   or an over-allocation;
//! * [`encode_framed`]/[`decode_framed`] wrap payloads with a magic
//!   number, a format version, and a type tag so endpoints reject foreign
//!   or stale bytes early.
//!
//! # Example
//!
//! ```
//! use scec_linalg::{Fp61, Matrix};
//! use scec_wire::{decode_framed, encode_framed, WireDecode, WireEncode};
//!
//! let m = Matrix::<Fp61>::identity(3);
//! let bytes = encode_framed(&m, scec_wire::tag::MATRIX);
//! let back: Matrix<Fp61> = decode_framed(&bytes, scec_wire::tag::MATRIX)?;
//! assert_eq!(m, back);
//! # Ok::<(), scec_wire::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use scec_linalg::{Fp61, FpGeneric, Matrix, Scalar, Vector};
use scec_telemetry::context::{TraceContext, TRACE_CONTEXT_WIRE_BYTES};

/// Magic bytes prefixing every framed message (`"SCEC"`).
pub const MAGIC: [u8; 4] = *b"SCEC";

/// Current wire-format version.
pub const VERSION: u16 = 1;

/// Wire-format version whose header carries a 17-byte trace-context
/// block (`trace_id: u64 LE | parent_span_id: u64 LE | flags: u8`)
/// between the tag and the payload. Payload layouts are identical to
/// [`VERSION`]; decoders accept both, so old and new endpoints
/// interoperate — an untraced peer simply never emits version 2.
pub const TRACED_VERSION: u16 = 2;

/// Type tags for framed messages.
pub mod tag {
    /// A [`Matrix`](scec_linalg::Matrix) payload.
    pub const MATRIX: u16 = 1;
    /// A [`Vector`](scec_linalg::Vector) payload.
    pub const VECTOR: u16 = 2;
    /// A coded device share (defined by `scec-coding`).
    pub const DEVICE_SHARE: u16 = 3;
    /// A tagged straggler share.
    pub const STRAGGLER_SHARE: u16 = 4;
    /// A query message.
    pub const QUERY: u16 = 5;
    /// A partial-result message.
    pub const PARTIAL: u16 = 6;
    /// A batched multi-query panel broadcast (an `l × k` matrix of `k`
    /// query columns shipped in one frame).
    pub const QUERY_PANEL: u16 = 7;
    /// A device's partial result for a whole panel (a `rows × k` block,
    /// optionally row-tagged for straggler-tolerant assembly).
    pub const PANEL_PARTIAL: u16 = 8;
    /// A device-side failure report for one request (the networked
    /// analogue of an in-process `FromDevice::Failure`).
    pub const FAILURE: u16 = 9;
    /// Connection handshake: which `(tenant, device)` pair a socket
    /// serves.
    pub const HELLO: u16 = 10;
    /// Clean shutdown notice for a connection.
    pub const BYE: u16 = 11;
    /// A straggler device's row-tagged partial for a single query (a
    /// list of `(row, value)` responses).
    pub const TAGGED_PARTIAL: u16 = 12;
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed beyond the buffer.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// The magic prefix did not match.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion {
        /// Version found in the frame.
        got: u16,
    },
    /// The frame's type tag did not match the expected one.
    WrongTag {
        /// Tag expected by the caller.
        expected: u16,
        /// Tag found in the frame.
        got: u16,
    },
    /// A length prefix is implausibly large for the remaining buffer —
    /// rejected before allocation.
    LengthOverflow {
        /// The claimed element count.
        claimed: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A field element was out of canonical range for its field.
    InvalidFieldElement {
        /// The raw value found.
        raw: u64,
    },
    /// A structural invariant failed (e.g. matrix dims vs data length).
    Malformed(&'static str),
    /// Trailing bytes followed a complete value.
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
    /// A length-prefixed stream frame claimed more bytes than the
    /// receiver's configured cap — rejected before allocation.
    FrameTooLarge {
        /// The claimed frame length in bytes.
        size: u64,
        /// The receiver's maximum accepted frame length.
        max: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: need {needed} bytes, {remaining} remain"
                )
            }
            Error::BadMagic => f.write_str("bad magic prefix"),
            Error::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (supported: {VERSION}, {TRACED_VERSION})"
                )
            }
            Error::WrongTag { expected, got } => {
                write!(f, "wrong message tag: expected {expected}, got {got}")
            }
            Error::LengthOverflow { claimed, remaining } => {
                write!(
                    f,
                    "length prefix {claimed} exceeds remaining {remaining} bytes"
                )
            }
            Error::InvalidFieldElement { raw } => {
                write!(f, "field element {raw} out of canonical range")
            }
            Error::Malformed(what) => write!(f, "malformed payload: {what}"),
            Error::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
            Error::FrameTooLarge { size, max } => {
                write!(f, "frame of {size} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for Error {}

/// A specialized result type for wire operations.
pub type Result<T> = std::result::Result<T, Error>;

/// A bounds-checked cursor over an input buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] on truncation.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] on truncation.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length prefix and sanity-checks it against the remaining
    /// buffer, assuming each element needs at least `min_bytes_per_elem`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthOverflow`] for implausible lengths.
    pub fn length(&mut self, min_bytes_per_elem: usize) -> Result<usize> {
        let claimed = self.u64()?;
        let bound = (self.remaining() / min_bytes_per_elem.max(1)) as u64;
        if claimed > bound {
            return Err(Error::LengthOverflow {
                claimed,
                remaining: self.remaining(),
            });
        }
        Ok(claimed as usize)
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TrailingBytes`] otherwise.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Types that can serialize themselves onto the wire.
pub trait WireEncode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can deserialize themselves from the wire.
pub trait WireDecode: Sized {
    /// Reads one value from the cursor.
    ///
    /// # Errors
    ///
    /// Returns a decoding [`Error`] on truncated, corrupt, or
    /// out-of-range input.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Bulk-decodes `n` values, appending them to `out`.
    ///
    /// The default loops over [`WireDecode::decode`]; fixed-width types
    /// (the finite fields) override it to take one bounds-checked slice
    /// and iterate `chunks_exact`, avoiding per-element cursor
    /// bookkeeping on hot panel-decode paths.
    ///
    /// # Errors
    ///
    /// Returns a decoding [`Error`] on truncated, corrupt, or
    /// out-of-range input.
    fn decode_many(r: &mut Reader<'_>, n: usize, out: &mut Vec<Self>) -> Result<()> {
        out.reserve(n);
        for _ in 0..n {
            out.push(Self::decode(r)?);
        }
        Ok(())
    }

    /// Convenience: decode a value that must consume the whole buffer.
    ///
    /// # Errors
    ///
    /// Propagates decode errors and rejects trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl WireEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.u64()
    }
}

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| Error::Malformed("usize overflow"))
    }
}

impl WireEncode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl WireDecode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl WireEncode for Fp61 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.residue().encode(out);
    }
}

impl WireDecode for Fp61 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let raw = r.u64()?;
        if raw >= scec_linalg::fp::MODULUS {
            return Err(Error::InvalidFieldElement { raw });
        }
        Ok(Fp61::new(raw))
    }

    fn decode_many(r: &mut Reader<'_>, n: usize, out: &mut Vec<Self>) -> Result<()> {
        decode_residues(r, n, scec_linalg::fp::MODULUS, out, Fp61::new)
    }
}

impl<const P: u64> WireEncode for FpGeneric<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.residue().encode(out);
    }
}

impl<const P: u64> WireDecode for FpGeneric<P> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let raw = r.u64()?;
        if raw >= P {
            return Err(Error::InvalidFieldElement { raw });
        }
        Ok(FpGeneric::new(raw))
    }

    fn decode_many(r: &mut Reader<'_>, n: usize, out: &mut Vec<Self>) -> Result<()> {
        decode_residues(r, n, P, out, FpGeneric::new)
    }
}

/// Shared bulk path for the fixed-width fields: one bounds check, one
/// contiguous slice, `chunks_exact` over 8-byte residues.
fn decode_residues<T>(
    r: &mut Reader<'_>,
    n: usize,
    modulus: u64,
    out: &mut Vec<T>,
    make: impl Fn(u64) -> T,
) -> Result<()> {
    let bytes = n
        .checked_mul(8)
        .ok_or(Error::Malformed("element count overflow"))?;
    let raw = r.take(bytes)?;
    out.reserve(n);
    for chunk in raw.chunks_exact(8) {
        let v = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        if v >= modulus {
            return Err(Error::InvalidFieldElement { raw: v });
        }
        out.push(make(v));
    }
    Ok(())
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        // Every supported element costs at least 1 byte on the wire.
        let len = r.length(1)?;
        let mut out = Vec::new();
        T::decode_many(r, len, &mut out)?;
        Ok(out)
    }
}

impl<F: Scalar + WireEncode> WireEncode for Vector<F> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self.as_slice() {
            v.encode(out);
        }
    }
}

impl<F: Scalar + WireDecode> WireDecode for Vector<F> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.length(8)?;
        let mut data = Vec::new();
        F::decode_many(r, len, &mut data)?;
        Ok(Vector::from_vec(data))
    }
}

impl<F: Scalar + WireEncode> WireEncode for Matrix<F> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nrows().encode(out);
        self.ncols().encode(out);
        for v in self.as_flat() {
            v.encode(out);
        }
    }
}

impl<F: Scalar + WireDecode> WireDecode for Matrix<F> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let rows = usize::decode(r)?;
        let cols = usize::decode(r)?;
        let total = rows
            .checked_mul(cols)
            .ok_or(Error::Malformed("matrix dimension overflow"))?;
        if (total as u64) > (r.remaining() / 8) as u64 {
            return Err(Error::LengthOverflow {
                claimed: total as u64,
                remaining: r.remaining(),
            });
        }
        let mut data = Vec::new();
        F::decode_many(r, total, &mut data)?;
        Matrix::from_flat(rows, cols, data).map_err(|_| Error::Malformed("matrix shape"))
    }
}

/// Encodes a value inside a `MAGIC | VERSION | tag | payload` frame.
pub fn encode_framed<T: WireEncode>(value: &T, tag: u16) -> Vec<u8> {
    let mut out = Vec::new();
    encode_framed_into(value, tag, &mut out);
    out
}

/// Encodes a value inside a `MAGIC | VERSION | tag | payload` frame,
/// reusing a caller-provided buffer.
///
/// The buffer is cleared first but keeps its capacity, so a connection
/// loop that encodes into the same pooled `Vec<u8>` amortizes the
/// allocation to zero per message once warm.
pub fn encode_framed_into<T: WireEncode>(value: &T, tag: u16, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    value.encode(out);
}

/// Encodes a value inside a frame, stamping a trace context into a
/// [`TRACED_VERSION`] header when one is given. With `ctx == None` this
/// is exactly [`encode_framed_into`] — a version-1 frame — so tracing
/// stays pay-for-what-you-use on the wire.
pub fn encode_framed_ctx_into<T: WireEncode>(
    value: &T,
    tag: u16,
    ctx: Option<&TraceContext>,
    out: &mut Vec<u8>,
) {
    let Some(ctx) = ctx else {
        return encode_framed_into(value, tag, out);
    };
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&TRACED_VERSION.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    ctx.encode_into(out);
    value.encode(out);
}

/// A parsed frame header: which version, which tag, any trace context,
/// and where the payload starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame version ([`VERSION`] or [`TRACED_VERSION`]).
    pub version: u16,
    /// The frame's type tag.
    pub tag: u16,
    /// The trace context, for [`TRACED_VERSION`] frames.
    pub trace: Option<TraceContext>,
    /// Byte offset of the payload within the frame.
    pub payload_start: usize,
}

/// Parses a frame header without touching the payload: magic, version
/// (1 or 2), tag, and — for version-2 frames — the trace-context
/// block. The returned [`FrameHeader::payload_start`] lets codecs
/// decode the payload identically for both versions.
///
/// # Errors
///
/// Returns [`Error::BadMagic`], [`Error::UnsupportedVersion`], or
/// [`Error::UnexpectedEof`] when the header is incomplete.
pub fn parse_header(bytes: &[u8]) -> Result<FrameHeader> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(Error::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION && version != TRACED_VERSION {
        return Err(Error::UnsupportedVersion { got: version });
    }
    let tag = r.u16()?;
    let trace = if version == TRACED_VERSION {
        let block = r.take(TRACE_CONTEXT_WIRE_BYTES as usize)?;
        TraceContext::decode(block)
    } else {
        None
    };
    Ok(FrameHeader {
        version,
        tag,
        trace,
        payload_start: bytes.len() - r.remaining(),
    })
}

/// Peeks the type tag of a framed message without decoding the payload,
/// validating magic and version (either supported version).
///
/// Lets a connection loop dispatch on message type before committing to
/// a payload decode.
///
/// # Errors
///
/// Returns [`Error::BadMagic`], [`Error::UnsupportedVersion`], or
/// [`Error::UnexpectedEof`] when the header is incomplete.
pub fn peek_tag(bytes: &[u8]) -> Result<u16> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(Error::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION && version != TRACED_VERSION {
        return Err(Error::UnsupportedVersion { got: version });
    }
    r.u16()
}

/// Decodes a framed value, validating magic, version, and tag, and
/// requiring the payload to consume the whole frame. A
/// [`TRACED_VERSION`] header's trace block is skipped — use
/// [`decode_framed_ctx`] to keep it.
///
/// # Errors
///
/// Returns [`Error::BadMagic`], [`Error::UnsupportedVersion`],
/// [`Error::WrongTag`], or any payload decode error.
pub fn decode_framed<T: WireDecode>(bytes: &[u8], expected_tag: u16) -> Result<T> {
    decode_framed_ctx(bytes, expected_tag).map(|(v, _)| v)
}

/// Decodes a framed value plus the trace context its header carried
/// (`None` for version-1 frames).
///
/// # Errors
///
/// Same contract as [`decode_framed`].
pub fn decode_framed_ctx<T: WireDecode>(
    bytes: &[u8],
    expected_tag: u16,
) -> Result<(T, Option<TraceContext>)> {
    let header = parse_header(bytes)?;
    if header.tag != expected_tag {
        return Err(Error::WrongTag {
            expected: expected_tag,
            got: header.tag,
        });
    }
    let mut r = Reader::new(&bytes[header.payload_start..]);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok((v, header.trace))
}

pub mod stream {
    //! Length-prefixed framing over blocking byte streams.
    //!
    //! A stream frame is a little-endian `u32` byte count followed by a
    //! [`encode_framed`](crate::encode_framed)-style message. The writer
    //! issues **one** vectored write syscall for header + payload in the
    //! common case; the reader enforces a maximum frame size before
    //! allocating, so a hostile or corrupt peer cannot force an
    //! over-allocation or an over-read.

    use std::fmt;
    use std::io::{self, IoSlice, Read, Write};

    use super::Error;

    /// Bytes in the stream-level length prefix.
    pub const LEN_PREFIX_BYTES: usize = 4;

    /// Default cap on an incoming frame's payload length (64 MiB) —
    /// far above any legitimate SCEC message, far below an allocation
    /// bomb.
    pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

    /// Failures while moving frames over a byte stream.
    #[derive(Debug)]
    #[non_exhaustive]
    pub enum StreamError {
        /// The peer closed the stream cleanly at a frame boundary.
        Closed,
        /// The underlying transport failed.
        Io(io::Error),
        /// The frame violated the wire format (truncated mid-frame,
        /// larger than the receiver's cap, …).
        Wire(Error),
    }

    impl fmt::Display for StreamError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                StreamError::Closed => f.write_str("stream closed at a frame boundary"),
                StreamError::Io(e) => write!(f, "stream i/o error: {e}"),
                StreamError::Wire(e) => write!(f, "stream framing error: {e}"),
            }
        }
    }

    impl std::error::Error for StreamError {}

    impl From<Error> for StreamError {
        fn from(e: Error) -> Self {
            StreamError::Wire(e)
        }
    }

    /// Writes one `u32`-length-prefixed frame.
    ///
    /// Header and payload go out in a single
    /// [`write_vectored`](Write::write_vectored) call when the sink
    /// accepts it all at once (the normal case on a socket); partial
    /// writes fall back to a completion loop.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error, [`io::ErrorKind::InvalidInput`] for
    /// frames over `u32::MAX` bytes, or [`io::ErrorKind::WriteZero`]
    /// when the sink stops accepting bytes.
    pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32::MAX"))?;
        let header = len.to_le_bytes();
        let total = header.len() + frame.len();
        let mut written = 0usize;
        while written < total {
            let n = if written < header.len() {
                w.write_vectored(&[IoSlice::new(&header[written..]), IoSlice::new(frame)])
            } else {
                w.write(&frame[written - header.len()..])
            };
            match n {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "sink stopped accepting frame bytes",
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reads one length-prefixed frame into `buf` (cleared and reused,
    /// keeping its capacity warm across calls).
    ///
    /// Reads exactly `4 + len` bytes — never past the frame boundary —
    /// and rejects any claimed length above `max_frame` **before**
    /// allocating.
    ///
    /// # Errors
    ///
    /// * [`StreamError::Closed`] — clean EOF before any header byte;
    /// * [`StreamError::Wire`]`(`[`Error::UnexpectedEof`]`)` — EOF
    ///   mid-header or mid-payload (a truncated frame);
    /// * [`StreamError::Wire`]`(`[`Error::FrameTooLarge`]`)` — claimed
    ///   length above `max_frame`;
    /// * [`StreamError::Io`] — any other transport failure.
    pub fn read_frame<R: Read>(
        r: &mut R,
        buf: &mut Vec<u8>,
        max_frame: usize,
    ) -> Result<(), StreamError> {
        let mut header = [0u8; LEN_PREFIX_BYTES];
        let mut got = 0usize;
        while got < header.len() {
            match r.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Err(StreamError::Closed),
                Ok(0) => {
                    return Err(StreamError::Wire(Error::UnexpectedEof {
                        needed: header.len(),
                        remaining: got,
                    }))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(StreamError::Io(e)),
            }
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > max_frame {
            return Err(StreamError::Wire(Error::FrameTooLarge {
                size: len as u64,
                max: max_frame as u64,
            }));
        }
        buf.clear();
        buf.resize(len, 0);
        match r.read_exact(buf) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                Err(StreamError::Wire(Error::UnexpectedEof {
                    needed: len,
                    remaining: 0,
                }))
            }
            Err(e) => Err(StreamError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn primitive_roundtrips() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        let nan = f64::from_bytes(&f64::NAN.to_bytes()).unwrap();
        assert!(nan.is_nan());
        assert_eq!(usize::from_bytes(&42usize.to_bytes()).unwrap(), 42);
    }

    #[test]
    fn field_elements_roundtrip_and_validate() {
        let x = Fp61::new(123456789);
        assert_eq!(Fp61::from_bytes(&x.to_bytes()).unwrap(), x);
        // Out-of-range residue is rejected.
        let bad = u64::MAX.to_bytes();
        assert!(matches!(
            Fp61::from_bytes(&bad),
            Err(Error::InvalidFieldElement { .. })
        ));
        type F257 = FpGeneric<257>;
        let y = F257::new(200);
        assert_eq!(F257::from_bytes(&y.to_bytes()).unwrap(), y);
        assert!(matches!(
            F257::from_bytes(&300u64.to_bytes()),
            Err(Error::InvalidFieldElement { raw: 300 })
        ));
    }

    #[test]
    fn matrix_and_vector_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::<Fp61>::random(4, 7, &mut rng);
        assert_eq!(Matrix::<Fp61>::from_bytes(&m.to_bytes()).unwrap(), m);
        let v = Vector::<f64>::random(9, &mut rng);
        assert_eq!(Vector::<f64>::from_bytes(&v.to_bytes()).unwrap(), v);
        let empty = Matrix::<Fp61>::zeros(0, 5);
        assert_eq!(
            Matrix::<Fp61>::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn truncation_is_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Matrix::<Fp61>::random(3, 3, &mut rng);
        let bytes = m.to_bytes();
        for cut in [0, 1, 8, bytes.len() - 1] {
            let err = Matrix::<Fp61>::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        // Claim 2^60 elements with a 16-byte buffer.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            Vector::<Fp61>::from_bytes(&bytes),
            Err(Error::LengthOverflow { .. })
        ));
        // Same for matrices via dimension overflow.
        let mut bytes = Vec::new();
        usize::MAX.encode(&mut bytes);
        usize::MAX.encode(&mut bytes);
        assert!(Matrix::<Fp61>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(Error::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn framing_validates_magic_version_tag() {
        let m = Matrix::<Fp61>::identity(2);
        let frame = encode_framed(&m, tag::MATRIX);
        assert_eq!(
            decode_framed::<Matrix<Fp61>>(&frame, tag::MATRIX).unwrap(),
            m
        );
        // Wrong tag.
        assert!(matches!(
            decode_framed::<Matrix<Fp61>>(&frame, tag::VECTOR),
            Err(Error::WrongTag { .. })
        ));
        // Corrupt magic.
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_framed::<Matrix<Fp61>>(&bad, tag::MATRIX),
            Err(Error::BadMagic)
        ));
        // Future version.
        let mut bad = frame.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_framed::<Matrix<Fp61>>(&bad, tag::MATRIX),
            Err(Error::UnsupportedVersion { got: 99 })
        ));
    }

    #[test]
    fn traced_frames_carry_context_and_stay_tag_compatible() {
        let m = Matrix::<Fp61>::identity(2);
        let ctx = TraceContext {
            trace_id: 0x1234_5678_9abc_def0,
            parent_span_id: 0x0fed_cba9_8765_4321,
            sampled: true,
        };
        let mut traced = Vec::new();
        encode_framed_ctx_into(&m, tag::MATRIX, Some(&ctx), &mut traced);
        // The v2 frame is exactly the v1 frame plus the 17-byte block.
        let plain = encode_framed(&m, tag::MATRIX);
        assert_eq!(
            traced.len(),
            plain.len() + TRACE_CONTEXT_WIRE_BYTES as usize
        );
        // Both peek and decode paths accept the new version.
        assert_eq!(peek_tag(&traced).unwrap(), tag::MATRIX);
        let header = parse_header(&traced).unwrap();
        assert_eq!(header.version, TRACED_VERSION);
        assert_eq!(header.trace, Some(ctx));
        let (back, got) = decode_framed_ctx::<Matrix<Fp61>>(&traced, tag::MATRIX).unwrap();
        assert_eq!(back, m);
        assert_eq!(got, Some(ctx));
        // The ctx-oblivious decoder skips the block transparently.
        assert_eq!(
            decode_framed::<Matrix<Fp61>>(&traced, tag::MATRIX).unwrap(),
            m
        );
        // And a v1 frame reports no context through the ctx-aware path.
        let (back, got) = decode_framed_ctx::<Matrix<Fp61>>(&plain, tag::MATRIX).unwrap();
        assert_eq!(back, m);
        assert_eq!(got, None);
        // `None` context degrades to a byte-identical v1 frame.
        let mut untraced = Vec::new();
        encode_framed_ctx_into(&m, tag::MATRIX, None, &mut untraced);
        assert_eq!(untraced, plain);
    }

    #[test]
    fn truncated_trace_block_is_a_typed_error() {
        let m = Matrix::<Fp61>::identity(2);
        let ctx = TraceContext {
            trace_id: 7,
            parent_span_id: 9,
            sampled: false,
        };
        let mut traced = Vec::new();
        encode_framed_ctx_into(&m, tag::MATRIX, Some(&ctx), &mut traced);
        // Cut inside the trace block: header parse must EOF, not panic.
        assert!(matches!(
            parse_header(&traced[..12]),
            Err(Error::UnexpectedEof { .. })
        ));
        assert!(decode_framed::<Matrix<Fp61>>(&traced[..20], tag::MATRIX).is_err());
    }

    #[test]
    fn vec_of_values_roundtrips() {
        let xs: Vec<u64> = vec![1, 2, 3, u64::MAX];
        assert_eq!(Vec::<u64>::from_bytes(&xs.to_bytes()).unwrap(), xs);
        let empty: Vec<u64> = vec![];
        assert_eq!(Vec::<u64>::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn error_display() {
        assert!(Error::BadMagic.to_string().contains("magic"));
        assert!(Error::UnexpectedEof {
            needed: 8,
            remaining: 2
        }
        .to_string()
        .contains("need 8"));
        assert!(Error::Malformed("x").to_string().contains("x"));
    }
}
