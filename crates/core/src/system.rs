//! The end-to-end MCSCEC pipeline (Sec. II-D).

use rand::Rng;

use scec_allocation::{AllocationPlan, EdgeFleet};
use scec_coding::{decode, CodeDesign, DeviceShare, Encoder};
use scec_linalg::{Matrix, Scalar, Vector};

use crate::error::{Error, Result};
use crate::metrics::{ResourceUsage, SystemUsage};
use crate::strategy::AllocationStrategy;

/// A configured secure coded edge computing system: the cloud's view.
///
/// Holds the confidential data matrix `A`, the fleet description, the
/// chosen allocation plan and the matching code design. Call
/// [`distribute`](Self::distribute) to produce the runtime
/// [`Deployment`] (coded shares on devices).
///
/// See the [crate-level example](crate) for the full pipeline.
#[derive(Clone)]
pub struct ScecSystem<F> {
    data: Matrix<F>,
    fleet: EdgeFleet,
    strategy: AllocationStrategy,
    plan: AllocationPlan,
    design: CodeDesign,
}

impl<F: Scalar> std::fmt::Debug for ScecSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScecSystem")
            .field("data", &self.data)
            .field("strategy", &self.strategy)
            .field("plan", &self.plan)
            .field("design", &self.design)
            .finish_non_exhaustive()
    }
}

impl<F: Scalar> ScecSystem<F> {
    /// Runs task allocation for `data` over `fleet` and fixes the code
    /// design.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyData`] when `data` has no rows or columns;
    /// * [`Error::Allocation`] when the fleet is invalid;
    /// * [`Error::Coding`] when the derived `(m, r)` cannot form a design
    ///   (cannot happen for feasible plans; kept for defense in depth).
    pub fn build<R: Rng + ?Sized>(
        data: Matrix<F>,
        fleet: EdgeFleet,
        strategy: AllocationStrategy,
        rng: &mut R,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(Error::EmptyData);
        }
        let plan = strategy.allocate(data.nrows(), &fleet, rng)?;
        let design = CodeDesign::new(data.nrows(), plan.random_rows())?;
        debug_assert_eq!(design.device_count(), plan.device_count());
        Ok(ScecSystem {
            data,
            fleet,
            strategy,
            plan,
            design,
        })
    }

    /// The confidential data matrix `A`.
    pub fn data(&self) -> &Matrix<F> {
        &self.data
    }

    /// The fleet the system allocates over.
    pub fn fleet(&self) -> &EdgeFleet {
        &self.fleet
    }

    /// The strategy used for allocation.
    pub fn strategy(&self) -> AllocationStrategy {
        self.strategy
    }

    /// The chosen allocation plan (loads and predicted cost).
    pub fn plan(&self) -> &AllocationPlan {
        &self.plan
    }

    /// The matching code design.
    pub fn design(&self) -> &CodeDesign {
        &self.design
    }

    /// Step 2 of the pipeline: blind `A` with fresh randomness and place
    /// one coded share per participating device.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when encoding fails (shape mismatch —
    /// impossible for a system built by [`build`](Self::build)).
    pub fn distribute<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Deployment<F>> {
        let store = Encoder::new(self.design.clone()).encode(&self.data, rng)?;
        let devices = store
            .into_shares()
            .into_iter()
            .map(|share| EdgeDeviceRuntime { share })
            .collect();
        Ok(Deployment {
            design: self.design.clone(),
            width: self.data.ncols(),
            devices,
        })
    }
}

/// A single edge device at runtime: it stores its coded share and answers
/// compute requests. It never sees `A` itself.
#[derive(Clone)]
pub struct EdgeDeviceRuntime<F> {
    share: DeviceShare<F>,
}

impl<F: Scalar> std::fmt::Debug for EdgeDeviceRuntime<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeDeviceRuntime")
            .field("share", &self.share)
            .finish()
    }
}

impl<F: Scalar> EdgeDeviceRuntime<F> {
    /// The 1-based device index within the deployment.
    pub fn device(&self) -> usize {
        self.share.device()
    }

    /// The stored coded share `B_j T` (what a passive attacker on this
    /// device observes).
    pub fn share(&self) -> &DeviceShare<F> {
        &self.share
    }

    /// Step 3: the device-side computation `B_j T · x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when `x` has the wrong length.
    pub fn compute(&self, x: &Vector<F>) -> Result<Vector<F>> {
        Ok(self.share.compute(x)?)
    }

    /// This device's per-query resource usage in Eq. (1) units.
    pub fn usage(&self, width: usize) -> ResourceUsage {
        ResourceUsage::for_device(self.share.load(), width)
    }
}

/// A live deployment: coded shares resident on `i` devices.
#[derive(Clone)]
pub struct Deployment<F> {
    design: CodeDesign,
    width: usize,
    devices: Vec<EdgeDeviceRuntime<F>>,
}

impl<F: Scalar> std::fmt::Debug for Deployment<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("design", &self.design)
            .field("width", &self.width)
            .field("devices", &self.devices)
            .finish()
    }
}

impl<F: Scalar> Deployment<F> {
    /// The code design in force.
    pub fn design(&self) -> &CodeDesign {
        &self.design
    }

    /// The width `l` of the data matrix (and of query vectors).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The participating devices, device 1 first.
    pub fn devices(&self) -> &[EdgeDeviceRuntime<F>] {
        &self.devices
    }

    /// Step 3 for the whole fleet: every device computes its partial
    /// `B_j T · x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when `x` has the wrong length.
    pub fn partials(&self, x: &Vector<F>) -> Result<Vec<Vector<F>>> {
        self.devices.iter().map(|d| d.compute(x)).collect()
    }

    /// Step 4: decode `y = Ax` from per-device responses (in device
    /// order).
    ///
    /// # Errors
    ///
    /// * [`Error::IncompleteResponses`] when the response count differs
    ///   from the device count;
    /// * [`Error::Coding`] when the stacked length is wrong.
    pub fn recover(&self, partials: &[Vector<F>]) -> Result<Vector<F>> {
        if partials.len() != self.devices.len() {
            return Err(Error::IncompleteResponses {
                expected: self.devices.len(),
                got: partials.len(),
            });
        }
        let btx = decode::stack_partials(partials);
        Ok(decode::decode_fast(&self.design, &btx)?)
    }

    /// Steps 3 + 4 in one call: the full secure query `y = Ax`.
    ///
    /// # Errors
    ///
    /// Propagates [`Deployment::partials`] and [`Deployment::recover`]
    /// failures.
    pub fn query(&self, x: &Vector<F>) -> Result<Vector<F>> {
        let partials = self.partials(x)?;
        self.recover(&partials)
    }

    /// Batched query: computes `Y = A·X` for a whole matrix of query
    /// columns in one protocol round (Sec. II-A's matrix–matrix case).
    ///
    /// `xs` is `l × n` (one query per column); the result is `m × n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when `xs` has the wrong row count.
    pub fn query_batch(&self, xs: &Matrix<F>) -> Result<Matrix<F>> {
        if xs.nrows() != self.width {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "query batch",
                expected: (self.width, xs.ncols()),
                got: xs.shape(),
            }));
        }
        let partials: Vec<Matrix<F>> = self
            .devices
            .iter()
            .map(|d| {
                Ok(d.share()
                    .coded()
                    .matmul(xs)
                    .map_err(scec_coding::Error::from)?)
            })
            .collect::<Result<_>>()?;
        let btx = decode::stack_partial_matrices(&partials)?;
        Ok(decode::decode_fast_batch(&self.design, &btx)?)
    }

    /// Measured per-query resource usage across the deployment.
    pub fn usage(&self) -> SystemUsage {
        SystemUsage {
            per_device: self.devices.iter().map(|d| d.usage(self.width)).collect(),
            decode_subtractions: decode::fast_decode_op_count(&self.design),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use scec_linalg::Fp61;

    fn fleet() -> EdgeFleet {
        EdgeFleet::from_unit_costs(vec![1.0, 1.5, 2.0, 3.0, 10.0]).unwrap()
    }

    fn build_fp(m: usize, l: usize, seed: u64) -> (Matrix<Fp61>, ScecSystem<Fp61>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let sys =
            ScecSystem::build(a.clone(), fleet(), AllocationStrategy::Mcscec, &mut rng).unwrap();
        (a, sys, rng)
    }

    #[test]
    fn end_to_end_exact_recovery() {
        let (a, sys, mut rng) = build_fp(8, 5, 1);
        let deployment = sys.distribute(&mut rng).unwrap();
        for _ in 0..5 {
            let x = Vector::<Fp61>::random(5, &mut rng);
            assert_eq!(deployment.query(&x).unwrap(), a.matvec(&x).unwrap());
        }
    }

    #[test]
    fn end_to_end_f64() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::<f64>::random(6, 4, &mut rng);
        let sys =
            ScecSystem::build(a.clone(), fleet(), AllocationStrategy::MaxNode, &mut rng).unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let x = Vector::<f64>::random(4, &mut rng);
        let y = deployment.query(&x).unwrap();
        let want = a.matvec(&x).unwrap();
        for p in 0..6 {
            assert!((y.at(p) - want.at(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_and_design_are_consistent() {
        let (_, sys, _) = build_fp(12, 3, 3);
        assert_eq!(sys.design().data_rows(), 12);
        assert_eq!(sys.design().random_rows(), sys.plan().random_rows());
        assert_eq!(sys.design().device_count(), sys.plan().device_count());
        assert_eq!(sys.strategy(), AllocationStrategy::Mcscec);
        assert_eq!(sys.fleet().len(), 5);
        assert_eq!(sys.data().nrows(), 12);
    }

    #[test]
    fn deployment_matches_plan_loads() {
        let (_, sys, mut rng) = build_fp(12, 3, 4);
        let deployment = sys.distribute(&mut rng).unwrap();
        let loads: Vec<usize> = deployment
            .devices()
            .iter()
            .map(|d| d.share().load())
            .collect();
        assert_eq!(loads.as_slice(), sys.plan().loads());
        for (idx, d) in deployment.devices().iter().enumerate() {
            assert_eq!(d.device(), idx + 1);
        }
    }

    #[test]
    fn recover_rejects_wrong_response_count() {
        let (_, sys, mut rng) = build_fp(6, 2, 5);
        let deployment = sys.distribute(&mut rng).unwrap();
        let x = Vector::<Fp61>::random(2, &mut rng);
        let mut partials = deployment.partials(&x).unwrap();
        partials.pop();
        assert!(matches!(
            deployment.recover(&partials),
            Err(Error::IncompleteResponses { .. })
        ));
    }

    #[test]
    fn query_rejects_wrong_width() {
        let (_, sys, mut rng) = build_fp(6, 2, 6);
        let deployment = sys.distribute(&mut rng).unwrap();
        let bad = Vector::<Fp61>::zeros(7);
        assert!(matches!(deployment.query(&bad), Err(Error::Coding(_))));
    }

    #[test]
    fn usage_totals_match_plan_shape() {
        let (_, sys, mut rng) = build_fp(10, 4, 7);
        let deployment = sys.distribute(&mut rng).unwrap();
        let usage = deployment.usage();
        assert_eq!(usage.per_device.len(), sys.plan().device_count());
        assert_eq!(usage.decode_subtractions, 10);
        let total = usage.device_total();
        let rows = sys.plan().total_rows();
        assert_eq!(total.values_transferred, rows);
        assert_eq!(total.multiplications, rows * 4);
    }

    #[test]
    fn batched_query_matches_columnwise_queries() {
        let (a, sys, mut rng) = build_fp(7, 4, 10);
        let deployment = sys.distribute(&mut rng).unwrap();
        let xs = Matrix::<Fp61>::random(4, 6, &mut rng);
        let batched = deployment.query_batch(&xs).unwrap();
        assert_eq!(batched, a.matmul(&xs).unwrap());
        for c in 0..6 {
            let x = xs.col(c);
            let single = deployment.query(&x).unwrap();
            assert_eq!(batched.col(c).as_slice(), single.as_slice());
        }
    }

    #[test]
    fn batched_query_rejects_wrong_row_count() {
        let (_, sys, mut rng) = build_fp(5, 3, 11);
        let deployment = sys.distribute(&mut rng).unwrap();
        let bad = Matrix::<Fp61>::zeros(4, 2);
        assert!(matches!(
            deployment.query_batch(&bad),
            Err(Error::Coding(_))
        ));
    }

    #[test]
    fn empty_data_is_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let empty = Matrix::<Fp61>::zeros(0, 4);
        assert!(matches!(
            ScecSystem::build(empty, fleet(), AllocationStrategy::Mcscec, &mut rng),
            Err(Error::EmptyData)
        ));
    }

    #[test]
    fn fresh_randomness_per_distribution() {
        let (_, sys, mut rng) = build_fp(6, 3, 9);
        let d1 = sys.distribute(&mut rng).unwrap();
        let d2 = sys.distribute(&mut rng).unwrap();
        // Device 1 holds the raw random rows; two distributions must differ.
        assert_ne!(
            d1.devices()[0].share().coded(),
            d2.devices()[0].share().coded()
        );
    }
}
