//! Resource accounting in the units of the paper's Eq. (1).
//!
//! For a device holding `V` coded rows of width `l`, one query costs
//!
//! * storage: `l` (input vector) + `V·l` (coded rows) + `V` (results),
//! * computation: `V·l` multiplications and `V·(l−1)` additions,
//! * communication: `V` values shipped back to the user.
//!
//! Multiplying by the component prices of a
//! [`DeviceCost`] reproduces Eq. (1) exactly,
//! which the tests assert. The experiment harness uses these to report
//! *measured* usage next to the allocation layer's *predicted* cost.

use serde::{Deserialize, Serialize};

use scec_allocation::DeviceCost;

/// Resource usage of a single device for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Field elements resident on the device (`l + V·l + V`).
    pub stored_elements: usize,
    /// Scalar multiplications performed (`V·l`).
    pub multiplications: usize,
    /// Scalar additions performed (`V·(l−1)`).
    pub additions: usize,
    /// Values shipped back to the user (`V`).
    pub values_transferred: usize,
}

impl ResourceUsage {
    /// Usage of a device holding `load` coded rows of width `l`.
    pub fn for_device(load: usize, l: usize) -> Self {
        ResourceUsage {
            stored_elements: l + load * l + load,
            multiplications: load * l,
            additions: load * l.saturating_sub(1),
            values_transferred: load,
        }
    }

    /// Monetized cost under a device's component prices — the bracketed
    /// per-device term of Eq. (1), including the fixed `l·c^s` part.
    pub fn cost(&self, prices: &DeviceCost) -> f64 {
        self.stored_elements as f64 * prices.storage()
            + self.multiplications as f64 * prices.mul()
            + self.additions as f64 * prices.add()
            + self.values_transferred as f64 * prices.comm()
    }

    /// Component-wise sum.
    pub fn combined(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            stored_elements: self.stored_elements + other.stored_elements,
            multiplications: self.multiplications + other.multiplications,
            additions: self.additions + other.additions,
            values_transferred: self.values_transferred + other.values_transferred,
        }
    }
}

/// Usage across a whole deployment, with the user-side decode work.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SystemUsage {
    /// Per-device usage, in device order (cheapest first).
    pub per_device: Vec<ResourceUsage>,
    /// Subtractions the user performs to decode (`m` for the fast path).
    pub decode_subtractions: usize,
}

impl SystemUsage {
    /// Total usage summed over devices (decode work excluded — it happens
    /// on the user device, which Eq. (1) does not price).
    pub fn device_total(&self) -> ResourceUsage {
        self.per_device
            .iter()
            .fold(ResourceUsage::default(), |acc, &u| acc.combined(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_device_formulas() {
        let u = ResourceUsage::for_device(4, 10);
        assert_eq!(u.stored_elements, 10 + 40 + 4);
        assert_eq!(u.multiplications, 40);
        assert_eq!(u.additions, 36);
        assert_eq!(u.values_transferred, 4);
    }

    #[test]
    fn width_one_has_no_additions() {
        let u = ResourceUsage::for_device(5, 1);
        assert_eq!(u.additions, 0);
        assert_eq!(u.multiplications, 5);
    }

    #[test]
    fn cost_reproduces_eq_1() {
        // Eq. (1): ((l+1)c_s + l c_m + (l-1) c_a + c_d) V + l c_s.
        let prices = DeviceCost::new(0.3, 0.05, 0.07, 1.1).unwrap();
        let (v, l) = (6usize, 9usize);
        let via_usage = ResourceUsage::for_device(v, l).cost(&prices);
        let unit = prices.unit_cost(l);
        let via_eq1 = unit * v as f64 + prices.fixed_cost(l);
        assert!(
            (via_usage - via_eq1).abs() < 1e-12,
            "{via_usage} vs {via_eq1}"
        );
    }

    #[test]
    fn combined_and_total() {
        let a = ResourceUsage::for_device(2, 3);
        let b = ResourceUsage::for_device(1, 3);
        let c = a.combined(b);
        assert_eq!(c.values_transferred, 3);
        let sys = SystemUsage {
            per_device: vec![a, b],
            decode_subtractions: 5,
        };
        assert_eq!(sys.device_total(), c);
    }
}
