//! Input privacy: hiding the query vector `x` from the edge devices.
//!
//! The paper protects the data matrix `A` and notes (Sec. II-B) that
//! "similar ideas can also be extended to protect both data matrix A and
//! input vector x simultaneously, which will be investigated in our
//! future work". This module implements the natural one-time-pad
//! construction:
//!
//! * **offline**, the cloud — which holds `A` — prepares *query pads*
//!   `(z, A·z)` for uniformly random `z`;
//! * **online**, the user blinds each query as `x̃ = x + z`, runs the
//!   ordinary secure pipeline to obtain `A·x̃`, and un-blinds with one
//!   vector subtraction: `A·x = A·x̃ − A·z`.
//!
//! Over GF(2⁶¹−1) the device-visible `x̃` is uniform and independent of
//! `x` — exact information-theoretic privacy for the input, on top of the
//! existing protection of `A`. Each pad must be used **once**; the API
//! consumes pads by value so reuse is a compile-time error, not a
//! discipline.

use rand::Rng;

use scec_linalg::{Matrix, Scalar, Vector};

use crate::error::{Error, Result};
use crate::system::Deployment;

/// One single-use blinding pad `(z, A·z)`, prepared by the cloud.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use scec_core::QueryPad;
/// use scec_linalg::{Fp61, Matrix, Vector};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let a = Matrix::<Fp61>::random(4, 3, &mut rng);
/// let pad = QueryPad::generate(&a, 1, &mut rng)?.pop().unwrap();
/// let x = Vector::<Fp61>::random(3, &mut rng);
/// let (blinded, key) = pad.blind(&x)?;
/// assert_ne!(blinded, x);                   // devices see x + z only
/// let blinded_result = a.matvec(&blinded).unwrap(); // = A·(x+z)
/// let y = key.unblind(&blinded_result)?;
/// assert_eq!(y, a.matvec(&x).unwrap());
/// # Ok::<(), scec_core::Error>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct QueryPad<F> {
    z: Vector<F>,
    az: Vector<F>,
}

impl<F: Scalar> std::fmt::Debug for QueryPad<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the pad material itself.
        f.debug_struct("QueryPad")
            .field("width", &self.z.len())
            .field("rows", &self.az.len())
            .finish()
    }
}

impl<F: Scalar> QueryPad<F> {
    /// Cloud-side: generates `count` pads for the data matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyData`] when `a` is empty.
    pub fn generate<R: Rng + ?Sized>(
        a: &Matrix<F>,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<QueryPad<F>>> {
        if a.is_empty() {
            return Err(Error::EmptyData);
        }
        (0..count)
            .map(|_| {
                let z = Vector::<F>::random(a.ncols(), rng);
                let az = a.matvec(&z).map_err(scec_coding::Error::from)?;
                Ok(QueryPad { z, az })
            })
            .collect()
    }

    /// The query width this pad blinds.
    pub fn width(&self) -> usize {
        self.z.len()
    }

    /// Consumes the pad: returns the blinded query `x + z` and the
    /// [`UnblindKey`] needed to recover the true result.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when `x` has the wrong length.
    pub fn blind(self, x: &Vector<F>) -> Result<(Vector<F>, UnblindKey<F>)> {
        if x.len() != self.z.len() {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "query vector vs pad",
                expected: (self.z.len(), 1),
                got: (x.len(), 1),
            }));
        }
        let blinded = x.add(&self.z).map_err(scec_coding::Error::from)?;
        Ok((blinded, UnblindKey { az: self.az }))
    }
}

/// The correction `A·z` retained by the user after blinding.
#[derive(Clone, PartialEq)]
pub struct UnblindKey<F> {
    az: Vector<F>,
}

impl<F: Scalar> std::fmt::Debug for UnblindKey<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnblindKey")
            .field("rows", &self.az.len())
            .finish()
    }
}

impl<F: Scalar> UnblindKey<F> {
    /// Recovers `A·x` from the blinded result `A·(x+z)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when the result length disagrees.
    pub fn unblind(self, blinded_result: &Vector<F>) -> Result<Vector<F>> {
        if blinded_result.len() != self.az.len() {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "blinded result vs unblind key",
                expected: (self.az.len(), 1),
                got: (blinded_result.len(), 1),
            }));
        }
        Ok(blinded_result
            .sub(&self.az)
            .map_err(scec_coding::Error::from)?)
    }
}

/// User-side query engine with a pad store: each query consumes one pad.
#[derive(Clone)]
pub struct PrivateQuerier<F> {
    pads: Vec<QueryPad<F>>,
}

impl<F: Scalar> std::fmt::Debug for PrivateQuerier<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateQuerier")
            .field("pads_remaining", &self.pads.len())
            .finish()
    }
}

impl<F: Scalar> PrivateQuerier<F> {
    /// Wraps a stock of pads received from the cloud.
    pub fn new(pads: Vec<QueryPad<F>>) -> Self {
        PrivateQuerier { pads }
    }

    /// Pads left in stock.
    pub fn pads_remaining(&self) -> usize {
        self.pads.len()
    }

    /// Runs one input-private secure query against a deployment: blinds
    /// `x`, queries, un-blinds. The devices observe only `x + z`.
    ///
    /// # Errors
    ///
    /// * [`Error::OutOfPads`] when the pad stock is exhausted;
    /// * [`Error::Coding`] on shape mismatches;
    /// * propagates [`Deployment::query`] failures.
    pub fn query(&mut self, deployment: &Deployment<F>, x: &Vector<F>) -> Result<Vector<F>> {
        let pad = self.pads.pop().ok_or(Error::OutOfPads)?;
        let (blinded, key) = pad.blind(x)?;
        let blinded_result = deployment.query(&blinded)?;
        key.unblind(&blinded_result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::AllocationStrategy;
    use crate::system::ScecSystem;
    use rand::{rngs::StdRng, SeedableRng};
    use scec_allocation::EdgeFleet;
    use scec_linalg::Fp61;

    fn setup(seed: u64) -> (Matrix<Fp61>, Deployment<Fp61>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(6, 4, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.5, 2.0]).unwrap();
        let sys =
            ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, &mut rng).unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        (a, deployment, rng)
    }

    #[test]
    fn private_query_recovers_ax_exactly() {
        let (a, deployment, mut rng) = setup(1);
        let pads = QueryPad::generate(&a, 5, &mut rng).unwrap();
        let mut querier = PrivateQuerier::new(pads);
        for _ in 0..5 {
            let x = Vector::<Fp61>::random(4, &mut rng);
            let y = querier.query(&deployment, &x).unwrap();
            assert_eq!(y, a.matvec(&x).unwrap());
        }
        assert_eq!(querier.pads_remaining(), 0);
    }

    #[test]
    fn pad_exhaustion_is_an_error() {
        let (a, deployment, mut rng) = setup(2);
        let pads = QueryPad::generate(&a, 1, &mut rng).unwrap();
        let mut querier = PrivateQuerier::new(pads);
        let x = Vector::<Fp61>::random(4, &mut rng);
        querier.query(&deployment, &x).unwrap();
        assert!(matches!(
            querier.query(&deployment, &x),
            Err(Error::OutOfPads)
        ));
    }

    #[test]
    fn blinded_query_is_independent_of_x() {
        // Device-visible x̃ = x + z: for two DIFFERENT x with the same pad,
        // the blinded queries differ by exactly x1 − x2, and for one x the
        // blinded query is uniform — spot-check it never equals x itself.
        let (a, _deployment, mut rng) = setup(3);
        for _ in 0..20 {
            let pad = QueryPad::generate(&a, 1, &mut rng).unwrap().pop().unwrap();
            let x = Vector::<Fp61>::random(4, &mut rng);
            let (blinded, _key) = pad.blind(&x).unwrap();
            assert_ne!(blinded, x, "blinding left x exposed");
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let (a, _deployment, mut rng) = setup(4);
        let pad = QueryPad::generate(&a, 1, &mut rng).unwrap().pop().unwrap();
        assert_eq!(pad.width(), 4);
        let wrong = Vector::<Fp61>::zeros(5);
        assert!(matches!(pad.clone().blind(&wrong), Err(Error::Coding(_))));
        let (_, key) = pad.blind(&Vector::<Fp61>::zeros(4)).unwrap();
        let wrong_result = Vector::<Fp61>::zeros(9);
        assert!(matches!(key.unblind(&wrong_result), Err(Error::Coding(_))));
    }

    #[test]
    fn generate_rejects_empty_matrix() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty = Matrix::<Fp61>::zeros(0, 4);
        assert!(matches!(
            QueryPad::generate(&empty, 1, &mut rng),
            Err(Error::EmptyData)
        ));
    }

    #[test]
    fn manual_blind_unblind_roundtrip() {
        let (a, deployment, mut rng) = setup(6);
        let pad = QueryPad::generate(&a, 1, &mut rng).unwrap().pop().unwrap();
        let x = Vector::<Fp61>::random(4, &mut rng);
        let (blinded, key) = pad.blind(&x).unwrap();
        let blinded_result = deployment.query(&blinded).unwrap();
        let y = key.unblind(&blinded_result).unwrap();
        assert_eq!(y, a.matvec(&x).unwrap());
    }
}
