//! Result integrity: detecting *wrong* answers, not just curious devices.
//!
//! The paper's attack model is honest-but-curious — devices follow the
//! protocol. A deployed system also wants to notice when they don't
//! (bit-flips, bugs, or actively Byzantine devices). This module adds a
//! Freivalds-style check in the spirit of the verifiable-computing line
//! the paper cites ([16] Gennaro–Gentry–Parno):
//!
//! * **offline**, the cloud samples a secret vector `u` and hands the
//!   user the pair `(u, uᵀA)`;
//! * **online**, after decoding `y`, the user accepts iff
//!   `uᵀ·y == (uᵀA)·x` — two inner products, O(m + l) per query.
//!
//! Over GF(2⁶¹−1) any incorrect `y` passes with probability `2⁻⁶¹`
//! (it would require `u ⊥ (y − A·x)` for a `u` the devices never see);
//! over `f64` the check is applied with a relative tolerance. The key is
//! reusable across queries because `u` stays secret from the devices.

use rand::Rng;

use scec_linalg::{Matrix, Scalar, Vector};

use crate::error::{Error, Result};
use crate::system::Deployment;

/// A reusable integrity key `(u, uᵀA)` held by the user.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use scec_core::IntegrityKey;
/// use scec_linalg::{Fp61, Matrix, Vector};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let a = Matrix::<Fp61>::random(5, 3, &mut rng);
/// let key = IntegrityKey::generate(&a, &mut rng)?;
/// let x = Vector::<Fp61>::random(3, &mut rng);
/// let y = a.matvec(&x).unwrap();
/// assert!(key.verify(&x, &y)?);
/// let mut forged = y.clone();
/// forged.as_mut_slice()[0] = forged.at(0) + Fp61::new(1);
/// assert!(!key.verify(&x, &forged)?);
/// # Ok::<(), scec_core::Error>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct IntegrityKey<F> {
    u: Vector<F>,
    ut_a: Vector<F>,
}

impl<F: Scalar> std::fmt::Debug for IntegrityKey<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The check vector is secret; print only the shape.
        f.debug_struct("IntegrityKey")
            .field("rows", &self.u.len())
            .field("width", &self.ut_a.len())
            .finish()
    }
}

impl<F: Scalar> IntegrityKey<F> {
    /// Cloud-side: samples `u` and precomputes `uᵀA`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyData`] when `a` is empty.
    pub fn generate<R: Rng + ?Sized>(a: &Matrix<F>, rng: &mut R) -> Result<Self> {
        if a.is_empty() {
            return Err(Error::EmptyData);
        }
        let u = Vector::<F>::random(a.nrows(), rng);
        // uᵀA via the fused transposed kernel — no materialized transpose.
        let ut_a = a.tr_matvec(&u).map_err(scec_coding::Error::from)?;
        Ok(IntegrityKey { u, ut_a })
    }

    /// Number of data rows this key checks.
    pub fn rows(&self) -> usize {
        self.u.len()
    }

    /// The residual `uᵀ·y − (uᵀA)·x`; zero (within field exactness) for a
    /// correct result.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] for shape mismatches.
    pub fn residual(&self, x: &Vector<F>, y: &Vector<F>) -> Result<F> {
        if y.len() != self.u.len() {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "result vector vs integrity key",
                expected: (self.u.len(), 1),
                got: (y.len(), 1),
            }));
        }
        if x.len() != self.ut_a.len() {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "query vector vs integrity key",
                expected: (self.ut_a.len(), 1),
                got: (x.len(), 1),
            }));
        }
        let lhs = self.u.dot(y).map_err(scec_coding::Error::from)?;
        let rhs = self.ut_a.dot(x).map_err(scec_coding::Error::from)?;
        Ok(lhs.sub(rhs))
    }

    /// Whether `y` is (with overwhelming probability) really `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] for shape mismatches.
    pub fn verify(&self, x: &Vector<F>, y: &Vector<F>) -> Result<bool> {
        Ok(self.residual(x, y)?.is_zero())
    }

    /// Batched residuals for a query panel: entry `j` is
    /// `uᵀ·Y_j − (uᵀA)·X_j`, zero for a correct column.
    ///
    /// One `Yᵀu` matvec and one `Xᵀ(uᵀA)` matvec check all `k` columns —
    /// two fused transposed kernels per **panel** instead of two dots per
    /// query; the per-column soundness bound (`2⁻⁶¹` over GF(2⁶¹−1)) is
    /// unchanged because each column is still an independent Freivalds
    /// test against the same secret `u`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] when `xs`/`ys` widths disagree or their
    /// row counts do not match the key.
    pub fn residual_panel(&self, xs: &Matrix<F>, ys: &Matrix<F>) -> Result<Vector<F>> {
        if ys.nrows() != self.u.len() || ys.ncols() != xs.ncols() {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "result panel vs integrity key",
                expected: (self.u.len(), xs.ncols()),
                got: ys.shape(),
            }));
        }
        if xs.nrows() != self.ut_a.len() {
            return Err(Error::Coding(scec_coding::Error::PayloadShape {
                what: "query panel vs integrity key",
                expected: (self.ut_a.len(), xs.ncols()),
                got: xs.shape(),
            }));
        }
        let lhs = ys.tr_matvec(&self.u).map_err(scec_coding::Error::from)?;
        let rhs = xs.tr_matvec(&self.ut_a).map_err(scec_coding::Error::from)?;
        Ok(lhs.sub(&rhs).map_err(scec_coding::Error::from)?)
    }

    /// Batched verify: checks every column of a decoded panel at once.
    /// Returns `Ok(None)` when every column passes, or `Ok(Some(j))` with
    /// the index of the first corrupted column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Coding`] for shape mismatches.
    pub fn verify_panel(&self, xs: &Matrix<F>, ys: &Matrix<F>) -> Result<Option<usize>> {
        let residuals = self.residual_panel(xs, ys)?;
        Ok(residuals.as_slice().iter().position(|r| !r.is_zero()))
    }
}

/// Runs a secure query and verifies the result before returning it.
///
/// # Errors
///
/// * Propagates [`Deployment::query`] failures;
/// * returns [`Error::IntegrityViolation`] when the decoded result fails
///   the Freivalds check — some device returned a wrong partial.
pub fn query_verified<F: Scalar>(
    deployment: &Deployment<F>,
    key: &IntegrityKey<F>,
    x: &Vector<F>,
) -> Result<Vector<F>> {
    let y = deployment.query(x)?;
    if !key.verify(x, &y)? {
        return Err(Error::IntegrityViolation);
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::AllocationStrategy;
    use crate::system::ScecSystem;
    use rand::{rngs::StdRng, SeedableRng};
    use scec_allocation::EdgeFleet;
    use scec_linalg::Fp61;

    fn setup(seed: u64) -> (Matrix<Fp61>, Deployment<Fp61>, IntegrityKey<Fp61>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(7, 4, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.5, 2.0, 2.5]).unwrap();
        let sys =
            ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, &mut rng).unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let key = IntegrityKey::generate(&a, &mut rng).unwrap();
        (a, deployment, key, rng)
    }

    #[test]
    fn honest_results_verify() {
        let (a, deployment, key, mut rng) = setup(1);
        for _ in 0..10 {
            let x = Vector::<Fp61>::random(4, &mut rng);
            let y = query_verified(&deployment, &key, &x).unwrap();
            assert_eq!(y, a.matvec(&x).unwrap());
        }
    }

    #[test]
    fn any_single_corruption_is_caught() {
        let (a, deployment, key, mut rng) = setup(2);
        let x = Vector::<Fp61>::random(4, &mut rng);
        let y = a.matvec(&x).unwrap();
        let _ = deployment;
        // Corrupt each coordinate in turn; all must be rejected.
        for p in 0..y.len() {
            let mut bad = y.clone();
            bad.as_mut_slice()[p] = bad.at(p) + Fp61::new(1);
            assert!(!key.verify(&x, &bad).unwrap(), "corruption at {p} passed");
            assert!(!key.residual(&x, &bad).unwrap().is_zero());
        }
        assert!(key.verify(&x, &y).unwrap());
    }

    #[test]
    fn byzantine_partial_fails_the_query_path() {
        // Corrupt one device's partial before recovery: the decoded y is
        // wrong somewhere, and the verified path must reject it.
        let (_a, deployment, key, mut rng) = setup(3);
        let x = Vector::<Fp61>::random(4, &mut rng);
        let mut partials = deployment.partials(&x).unwrap();
        let victim = partials.len() - 1;
        let slice = partials[victim].as_mut_slice();
        slice[0] += Fp61::new(42);
        let y = deployment.recover(&partials).unwrap();
        assert!(!key.verify(&x, &y).unwrap());
    }

    #[test]
    fn key_is_reusable_across_queries() {
        let (a, deployment, key, mut rng) = setup(4);
        for _ in 0..5 {
            let x = Vector::<Fp61>::random(4, &mut rng);
            let y = deployment.query(&x).unwrap();
            assert!(key.verify(&x, &y).unwrap());
            assert_eq!(y, a.matvec(&x).unwrap());
        }
        assert_eq!(key.rows(), 7);
    }

    #[test]
    fn honest_panels_verify_and_match_per_query_residuals() {
        let (a, _deployment, key, mut rng) = setup(8);
        for k in [1usize, 6] {
            let xs = Matrix::<Fp61>::random(4, k, &mut rng);
            let ys = a.matmul(&xs).unwrap();
            assert_eq!(key.verify_panel(&xs, &ys).unwrap(), None, "k={k}");
            let residuals = key.residual_panel(&xs, &ys).unwrap();
            for j in 0..k {
                assert_eq!(
                    residuals.at(j),
                    key.residual(&xs.col(j), &ys.col(j)).unwrap(),
                    "k={k} column {j}"
                );
            }
        }
    }

    #[test]
    fn panel_verify_pinpoints_each_corrupted_column() {
        let (a, _deployment, key, mut rng) = setup(9);
        let xs = Matrix::<Fp61>::random(4, 5, &mut rng);
        let ys = a.matmul(&xs).unwrap();
        for victim in 0..5 {
            let mut bad = ys.clone();
            let old = bad.at(2, victim);
            bad.set(2, victim, old + Fp61::new(1)).unwrap();
            assert_eq!(
                key.verify_panel(&xs, &bad).unwrap(),
                Some(victim),
                "corrupted column {victim} not identified"
            );
        }
    }

    #[test]
    fn panel_verify_validates_shapes() {
        let (_a, _deployment, key, mut rng) = setup(10);
        let xs = Matrix::<Fp61>::random(4, 3, &mut rng);
        assert!(key.verify_panel(&xs, &Matrix::zeros(6, 3)).is_err());
        assert!(key.verify_panel(&xs, &Matrix::zeros(7, 2)).is_err());
        assert!(key
            .verify_panel(&Matrix::zeros(5, 3), &Matrix::zeros(7, 3))
            .is_err());
    }

    #[test]
    fn shape_validation() {
        let (_a, _deployment, key, _rng) = setup(5);
        let bad_y = Vector::<Fp61>::zeros(3);
        let x = Vector::<Fp61>::zeros(4);
        assert!(key.verify(&x, &bad_y).is_err());
        let y = Vector::<Fp61>::zeros(7);
        let bad_x = Vector::<Fp61>::zeros(9);
        assert!(key.verify(&bad_x, &y).is_err());
        let mut rng = StdRng::seed_from_u64(6);
        assert!(IntegrityKey::<Fp61>::generate(&Matrix::zeros(0, 3), &mut rng).is_err());
    }

    #[test]
    fn f64_mode_verifies_with_tolerance_semantics() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::<f64>::random(6, 3, &mut rng);
        let key = IntegrityKey::generate(&a, &mut rng).unwrap();
        let x = Vector::<f64>::random(3, &mut rng);
        let y = a.matvec(&x).unwrap();
        // f64 Scalar::is_zero applies the numeric tolerance.
        assert!(key.verify(&x, &y).unwrap());
        let mut bad = y.clone();
        bad.as_mut_slice()[0] += 1.0;
        assert!(!key.verify(&x, &bad).unwrap());
    }
}
