//! Allocation strategy selection.

use rand::Rng;

use scec_allocation::{baselines, ta, AllocationPlan, EdgeFleet};

use crate::error::Result;

/// Which task-allocation algorithm drives the pipeline.
///
/// `Mcscec` (TA1) and `McscecExhaustive` (TA2) are the paper's optimal
/// algorithms and always produce the same total cost; the remaining
/// variants are the secure baselines of Sec. V. (The insecure `TAw/oS`
/// baseline cannot drive this pipeline — with `r = 0` no secure code
/// exists — and lives only in `scec_allocation::baselines`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AllocationStrategy {
    /// TA1 (Algorithm 1): O(k) closed-form optimum via `i*`.
    Mcscec,
    /// TA2 (Algorithm 2): O(k + m) exhaustive optimum.
    McscecExhaustive,
    /// Smallest feasible `r` — as many devices as possible.
    MaxNode,
    /// Largest feasible `r = m` — exactly two devices.
    MinNode,
    /// Uniformly random feasible `r`.
    RandomNode,
}

impl AllocationStrategy {
    /// Runs the selected algorithm.
    ///
    /// # Errors
    ///
    /// Propagates the allocation-layer validation errors (empty data,
    /// too-few devices).
    pub fn allocate<R: Rng + ?Sized>(
        self,
        m: usize,
        fleet: &EdgeFleet,
        rng: &mut R,
    ) -> Result<AllocationPlan> {
        let plan = match self {
            AllocationStrategy::Mcscec => ta::ta1(m, fleet)?,
            AllocationStrategy::McscecExhaustive => ta::ta2(m, fleet)?,
            AllocationStrategy::MaxNode => baselines::max_node(m, fleet)?,
            AllocationStrategy::MinNode => baselines::min_node(m, fleet)?,
            AllocationStrategy::RandomNode => baselines::r_node(m, fleet, rng)?,
        };
        Ok(plan)
    }

    /// Human-readable name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            AllocationStrategy::Mcscec => "MCSCEC",
            AllocationStrategy::McscecExhaustive => "MCSCEC(TA2)",
            AllocationStrategy::MaxNode => "MaxNode",
            AllocationStrategy::MinNode => "MinNode",
            AllocationStrategy::RandomNode => "RNode",
        }
    }
}

impl std::fmt::Display for AllocationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn all_strategies_produce_feasible_plans() {
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = 10;
        for s in [
            AllocationStrategy::Mcscec,
            AllocationStrategy::McscecExhaustive,
            AllocationStrategy::MaxNode,
            AllocationStrategy::MinNode,
            AllocationStrategy::RandomNode,
        ] {
            let plan = s.allocate(m, &fleet, &mut rng).unwrap();
            assert!(plan.satisfies_security_cap(), "{s}");
            assert_eq!(plan.total_rows(), m + plan.random_rows(), "{s}");
        }
    }

    #[test]
    fn optimal_strategies_agree() {
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.7, 2.9, 3.0, 8.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let p1 = AllocationStrategy::Mcscec
            .allocate(37, &fleet, &mut rng)
            .unwrap();
        let p2 = AllocationStrategy::McscecExhaustive
            .allocate(37, &fleet, &mut rng)
            .unwrap();
        assert!((p1.total_cost() - p2.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(AllocationStrategy::Mcscec.to_string(), "MCSCEC");
        assert_eq!(AllocationStrategy::MaxNode.name(), "MaxNode");
        assert_eq!(AllocationStrategy::MinNode.name(), "MinNode");
        assert_eq!(AllocationStrategy::RandomNode.name(), "RNode");
        assert_eq!(AllocationStrategy::McscecExhaustive.name(), "MCSCEC(TA2)");
    }
}
