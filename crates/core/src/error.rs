//! Error type for the end-to-end framework.

use std::fmt;

/// A specialized result type for framework operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the MCSCEC pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Task allocation failed (bad fleet, empty data, infeasible `r`).
    Allocation(scec_allocation::Error),
    /// Coding, encoding, or decoding failed.
    Coding(scec_coding::Error),
    /// The data matrix must be non-empty.
    EmptyData,
    /// A response set handed to the decoder does not cover every
    /// participating device exactly once.
    IncompleteResponses {
        /// Devices expected.
        expected: usize,
        /// Responses supplied.
        got: usize,
    },
    /// The strategy requires randomness but none was supplied.
    MissingRng,
    /// The input-privacy pad stock is exhausted; the cloud must provision
    /// more pads (each query consumes exactly one).
    OutOfPads,
    /// A decoded result failed the Freivalds integrity check — at least
    /// one device returned a wrong partial.
    IntegrityViolation,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Allocation(e) => write!(f, "task allocation failed: {e}"),
            Error::Coding(e) => write!(f, "coding failed: {e}"),
            Error::EmptyData => f.write_str("data matrix must be non-empty"),
            Error::IncompleteResponses { expected, got } => {
                write!(f, "expected {expected} device responses, got {got}")
            }
            Error::MissingRng => f.write_str("strategy requires a random source"),
            Error::OutOfPads => f.write_str("input-privacy pad stock exhausted"),
            Error::IntegrityViolation => f.write_str("decoded result failed the integrity check"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Allocation(e) => Some(e),
            Error::Coding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scec_allocation::Error> for Error {
    fn from(e: scec_allocation::Error) -> Self {
        Error::Allocation(e)
    }
}

impl From<scec_coding::Error> for Error {
    fn from(e: scec_coding::Error) -> Self {
        Error::Coding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = Error::from(scec_allocation::Error::EmptyData);
        assert!(e.to_string().starts_with("task allocation failed"));
        assert!(e.source().is_some());
        let e = Error::from(scec_coding::Error::UnknownDevice {
            device: 1,
            devices: 0,
        });
        assert!(e.to_string().starts_with("coding failed"));
        assert!(e.source().is_some());
        assert_eq!(
            Error::IncompleteResponses {
                expected: 3,
                got: 1
            }
            .to_string(),
            "expected 3 device responses, got 1"
        );
        assert!(Error::EmptyData.source().is_none());
    }
}
