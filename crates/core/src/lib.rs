//! Minimum-Cost Secure Coded Edge Computing (MCSCEC) — the end-to-end
//! framework of the ICDCS 2019 paper.
//!
//! This crate glues the two lower layers together into the four-step
//! pipeline of the paper's Sec. II-D:
//!
//! 1. **Task allocation** — pick `r` (random rows) and `i` (devices) with
//!    [`scec_allocation::ta::ta1`]/[`ta2`](scec_allocation::ta::ta2) or a
//!    baseline ([`AllocationStrategy`]).
//! 2. **Coded data distribution** — blind the data matrix `A` with `r`
//!    uniform random rows and ship each device its block `B_j T`
//!    ([`ScecSystem::distribute`]).
//! 3. **Coded edge computing** — every device computes `B_j T · x`
//!    ([`Deployment::partials`]).
//! 4. **Original result recovery** — the user decodes `y = Ax` with `m`
//!    subtractions ([`Deployment::query`] / [`Deployment::recover`]).
//!
//! The [`metrics`] module accounts storage, computation, and communication
//! exactly as the paper's Eq. (1) prices them, so experiments can compare
//! *predicted* allocation cost against *measured* resource usage.
//!
//! # Quickstart
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use scec_core::{AllocationStrategy, ScecSystem};
//! use scec_allocation::EdgeFleet;
//! use scec_linalg::{Fp61, Matrix, Vector};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // A pre-trained model matrix A (m = 6 rows) and an edge fleet of 4 devices.
//! let a = Matrix::<Fp61>::random(6, 8, &mut rng);
//! let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.2, 2.0, 3.5])?;
//!
//! let system = ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, &mut rng)?;
//! let deployment = system.distribute(&mut rng)?;
//!
//! let x = Vector::<Fp61>::random(8, &mut rng);
//! let y = deployment.query(&x)?;          // secure distributed A·x
//! assert_eq!(y, a.matvec(&x)?);           // exact recovery over GF(2^61−1)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod integrity;
pub mod metrics;
pub mod privacy;
pub mod strategy;
pub mod system;

pub use error::{Error, Result};
pub use integrity::{query_verified, IntegrityKey};
pub use privacy::{PrivateQuerier, QueryPad, UnblindKey};
pub use strategy::AllocationStrategy;
pub use system::{Deployment, EdgeDeviceRuntime, ScecSystem};
