//! Property-based tests for the end-to-end framework: recovery, batch
//! agreement, metrics consistency, input privacy, and integrity across
//! arbitrary shapes and strategies.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use scec_allocation::EdgeFleet;
use scec_core::{
    integrity::IntegrityKey, AllocationStrategy, PrivateQuerier, QueryPad, ScecSystem,
};
use scec_linalg::{Fp61, Matrix, Vector};

fn strategy_from(ix: usize) -> AllocationStrategy {
    [
        AllocationStrategy::Mcscec,
        AllocationStrategy::McscecExhaustive,
        AllocationStrategy::MaxNode,
        AllocationStrategy::MinNode,
        AllocationStrategy::RandomNode,
    ][ix % 5]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn end_to_end_recovery_is_exact(
        m in 1usize..15,
        l in 1usize..8,
        k in 2usize..8,
        strat in 0usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let costs: Vec<f64> = (0..k).map(|p| 1.0 + 0.4 * p as f64).collect();
        let fleet = EdgeFleet::from_unit_costs(costs).unwrap();
        let sys = ScecSystem::build(a.clone(), fleet, strategy_from(strat), &mut rng).unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let x = Vector::<Fp61>::random(l, &mut rng);
        prop_assert_eq!(deployment.query(&x).unwrap(), a.matvec(&x).unwrap());
    }

    #[test]
    fn usage_is_conserved(
        m in 1usize..15,
        l in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.5, 2.0, 3.0]).unwrap();
        let sys = ScecSystem::build(a, fleet, AllocationStrategy::Mcscec, &mut rng).unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let usage = deployment.usage();
        let total = usage.device_total();
        let rows = sys.plan().total_rows();
        prop_assert_eq!(total.values_transferred, rows);
        prop_assert_eq!(total.multiplications, rows * l);
        prop_assert_eq!(total.additions, rows * l.saturating_sub(1));
        prop_assert_eq!(usage.decode_subtractions, m);
    }

    #[test]
    fn private_queries_match_plain_queries(
        m in 1usize..10,
        l in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 2.0, 2.5]).unwrap();
        let sys = ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, &mut rng)
            .unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let pads = QueryPad::generate(&a, 2, &mut rng).unwrap();
        let mut querier = PrivateQuerier::new(pads);
        for _ in 0..2 {
            let x = Vector::<Fp61>::random(l, &mut rng);
            let private = querier.query(&deployment, &x).unwrap();
            let plain = deployment.query(&x).unwrap();
            prop_assert_eq!(&private, &plain);
            prop_assert_eq!(private, a.matvec(&x).unwrap());
        }
    }

    #[test]
    fn integrity_accepts_honest_rejects_corrupt(
        m in 2usize..10,
        l in 1usize..6,
        flip in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let key = IntegrityKey::generate(&a, &mut rng).unwrap();
        let x = Vector::<Fp61>::random(l, &mut rng);
        let y = a.matvec(&x).unwrap();
        prop_assert!(key.verify(&x, &y).unwrap());
        let mut bad = y.clone();
        let idx = flip % m;
        bad.as_mut_slice()[idx] = bad.at(idx) + Fp61::new(1);
        prop_assert!(!key.verify(&x, &bad).unwrap());
    }

    #[test]
    fn panel_freivalds_accepts_honest_rejects_corrupted_column(
        m in 2usize..10,
        l in 1usize..6,
        k in 1usize..7,
        corrupt in 0usize..64,
        seed in any::<u64>(),
    ) {
        // Batched Freivalds over a whole panel: one pair of transposed
        // matvecs must accept every honest column, and corrupting a
        // single entry of a single column must surface exactly that
        // column's index — for every panel width the pipeline can emit
        // (k = 1 ragged tails through full windows).
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let key = IntegrityKey::generate(&a, &mut rng).unwrap();
        let xs = Matrix::<Fp61>::random(l, k, &mut rng);
        let ys = a.matmul(&xs).unwrap();
        prop_assert_eq!(key.verify_panel(&xs, &ys).unwrap(), None);
        let (row, col) = (corrupt / k % m, corrupt % k);
        let mut bad = ys.clone();
        bad.set(row, col, ys.at(row, col) + Fp61::new(1)).unwrap();
        prop_assert_eq!(
            key.verify_panel(&xs, &bad).unwrap(),
            Some(col),
            "m={} l={} k={} corrupted ({}, {})", m, l, k, row, col
        );
    }

    #[test]
    fn batch_matches_columns(
        m in 1usize..10,
        l in 1usize..6,
        cols in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Fp61>::random(m, l, &mut rng);
        let fleet = EdgeFleet::from_unit_costs(vec![1.0, 1.1, 1.2]).unwrap();
        let sys = ScecSystem::build(a.clone(), fleet, AllocationStrategy::Mcscec, &mut rng)
            .unwrap();
        let deployment = sys.distribute(&mut rng).unwrap();
        let xs = Matrix::<Fp61>::random(l, cols, &mut rng);
        let batch = deployment.query_batch(&xs).unwrap();
        prop_assert_eq!(&batch, &a.matmul(&xs).unwrap());
        for c in 0..cols {
            let single = deployment.query(&xs.col(c)).unwrap();
            let batch_col = batch.col(c);
            prop_assert_eq!(single.as_slice(), batch_col.as_slice());
        }
    }
}
